//! Trace-driven scale bench for the sharded fleet layer.
//!
//! Replays a seeded Alibaba-style synthetic trace through
//! [`ecost_core::fleet::run_fleet`] — N independent calendar-scheduler
//! shards behind a deterministic arrival router — in two routing arms:
//!
//! * **rendezvous** — seeded rendezvous hashing on the behaviour class;
//! * **least_outstanding** — backlog-driven balancing off the per-shard
//!   gauges sampled at each epoch barrier.
//!
//! The trace is **never materialized**: [`TraceStream`] feeds arrivals to
//! the fleet one epoch at a time, so peak resident trace memory is the
//! densest epoch's batch (`peak_epoch_arrivals` in the output), not the
//! replay length — the bin fails if that footprint is not a small
//! fraction of the arrival count. Every shard engine runs under a
//! [`CacheBudget`]; the bin also fails if the replay never forced an
//! eviction (too small to prove bounded memory).
//!
//! Before the measured arms, the bin runtime-asserts the fleet's
//! single-shard identity contract on a trace prefix
//! ([`FleetRun::assert_single_shard_identity`]): a 1-shard fleet must be
//! bit-identical to the monolithic calendar driver, the way
//! `ServiceConfig::unlimited` callers assert serviced identity.
//!
//! Outputs:
//!
//! * `results/fleet.json` — fully deterministic document (no wall-clock
//!   fields; engine `wall_seconds` excluded); CI replays the same seed
//!   twice under different `RAYON_NUM_THREADS` and byte-diffs it.
//! * one `BENCH_trend.jsonl` row (schema `ecost-bench-trend/1`, arms
//!   `"fleet"`) carrying `fleet_decisions_per_s`, gated by `trend_check`.
//!
//! `ECOST_QUICK=1` shrinks the replay for CI smoke runs (4 shards × 25
//! nodes / 100k arrivals); the full mode runs 8 shards × 125 nodes / 1M
//! arrivals.

use ecost_apps::App;
use ecost_bench::harness::{Ctx, SEED};
use ecost_bench::BenchError;
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::EvalEngine;
use ecost_core::fleet::{run_fleet, FleetConfig, FleetRun, RoutePolicy};
use ecost_core::mapping::{run_ecost_open_stream, FaultSetup, OpenArrival, OpenOptions};
use ecost_core::pairing::{PairingMode, PairingPolicy};
use ecost_core::stp::LktStp;
use ecost_core::{CacheBudget, EcostContext, Testbed};
use ecost_sim::arrivals::{TraceArrival, TraceStream};
use ecost_sim::TraceSpec;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Replay geometry: fleet shape, arrival count, per-table cache budget
/// per shard engine, trace peak arrival rate.
struct Scale {
    shards: usize,
    nodes_per_shard: usize,
    arrivals: usize,
    budget: usize,
    peak_rate_per_s: f64,
}

impl Scale {
    fn new(quick: bool) -> Scale {
        if quick {
            Scale {
                shards: 4,
                nodes_per_shard: 25,
                arrivals: 100_000,
                budget: 1024,
                peak_rate_per_s: 4.0,
            }
        } else {
            Scale {
                shards: 8,
                nodes_per_shard: 125,
                arrivals: 1_000_000,
                budget: 4096,
                peak_rate_per_s: 40.0,
            }
        }
    }
}

/// Arrivals the single-shard identity prologue replays (materialized —
/// the monolithic driver takes a slice; kept small and mode-independent
/// so the assert costs the same everywhere).
const IDENTITY_ARRIVALS: usize = 1_500;
const IDENTITY_NODES: usize = 10;

/// The app catalog the trace's Zipf ranks map onto — one application per
/// broad resource class, so the mix exercises every pairing rule.
const CATALOG: [App; 4] = [App::Wc, App::St, App::Gp, App::Fp];

fn to_open(a: TraceArrival) -> OpenArrival {
    OpenArrival {
        app: CATALOG[a.app.min(CATALOG.len() - 1)],
        input_mb: a.size_mb,
        at_s: a.at_s,
    }
}

/// One measured routing arm of the replay.
struct ArmOut {
    name: &'static str,
    fleet: FleetRun,
    wall_s: f64,
}

impl ArmOut {
    /// Deterministic JSON fragment — virtual-time results and counters
    /// only, no wall-clock fields (those go to stdout and the trend row;
    /// engine `wall_seconds` is deliberately excluded).
    fn json(&self, idle_w: f64) -> String {
        let mut s = String::new();
        let f = &self.fleet;
        let _ = writeln!(s, "  \"{}\": {{", self.name);
        let _ = writeln!(s, "    \"makespan_s\": {:.6},", f.run.makespan_s);
        let _ = writeln!(s, "    \"energy_dyn_j\": {:.6},", f.run.energy_dyn_j);
        let _ = writeln!(s, "    \"edp_wall\": {:.6},", f.run.edp_wall(idle_w));
        let _ = writeln!(s, "    \"epochs\": {},", f.epochs);
        let _ = writeln!(s, "    \"peak_epoch_arrivals\": {},", f.peak_epoch_arrivals);
        let r = &f.report;
        let _ = writeln!(s, "    \"solo_fallbacks\": {},", r.solo_fallbacks);
        let _ = writeln!(s, "    \"config_fallbacks\": {},", r.config_fallbacks);
        let _ = writeln!(s, "    \"engine\": {{");
        let _ = writeln!(s, "      \"hits\": {},", f.stats.hits);
        let _ = writeln!(s, "      \"misses\": {},", f.stats.misses);
        let _ = writeln!(s, "      \"evictions\": {},", f.stats.evictions);
        let _ = writeln!(s, "      \"fallbacks\": {},", f.stats.fallbacks);
        let _ = writeln!(s, "      \"retries\": {},", f.stats.retries);
        let _ = writeln!(s, "      \"faults_injected\": {}", f.stats.faults_injected);
        let _ = writeln!(s, "    }},");
        let shard_arrivals: Vec<String> = f.shards.iter().map(|s| s.arrivals.to_string()).collect();
        let _ = writeln!(s, "    \"shard_arrivals\": [{}]", shard_arrivals.join(", "));
        s.push_str("  }");
        s
    }
}

/// Enforce the streaming-memory contract on a finished arm: the resident
/// trace footprint must be epoch-sized, not trace-sized, and the shard
/// engines' bounded caches must actually have been exercised.
fn check_bounds(arm: &ArmOut, arrivals: usize) -> Result<(), BenchError> {
    if arm.fleet.arrivals != arrivals as u64 {
        return Err(BenchError::Invalid(format!(
            "{}: routed {} arrivals, expected {}",
            arm.name, arm.fleet.arrivals, arrivals
        )));
    }
    if arm.fleet.peak_epoch_arrivals >= arrivals / 10 {
        return Err(BenchError::Invalid(format!(
            "{}: peak epoch batch {} is not small against {} arrivals — \
             the replay is not streaming",
            arm.name, arm.fleet.peak_epoch_arrivals, arrivals
        )));
    }
    if arm.fleet.stats.evictions == 0 {
        return Err(BenchError::Invalid(format!(
            "{}: replay never evicted — too small to exercise the bounded shard caches",
            arm.name
        )));
    }
    Ok(())
}

/// Append the run's decision throughput to the trend store, in the same
/// compact row format `bench_report` writes and `trend_check` reads.
fn append_trend_row(quick: bool, decisions_per_s: f64) -> Result<String, BenchError> {
    let path = std::env::var("ECOST_TREND_OUT").unwrap_or_else(|_| "BENCH_trend.jsonl".into());
    let commit = std::env::var("ECOST_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "uncommitted".into());
    if commit.contains('"') || commit.contains('\\') {
        return Err(BenchError::Invalid(format!(
            "commit id {commit:?} is not JSON-string safe"
        )));
    }
    let row = format!(
        "{{\"schema\":\"ecost-bench-trend/1\",\"commit\":\"{commit}\",\"mode\":\"{}\",\
         \"arms\":\"fleet\",\"threads\":{},\"fleet_decisions_per_s\":{:.1}}}",
        if quick { "quick" } else { "full" },
        rayon::current_num_threads(),
        decisions_per_s
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{row}")?;
    Ok(path)
}

fn run() -> Result<(), BenchError> {
    let quick = std::env::var("ECOST_QUICK").is_ok_and(|v| v == "1");
    let scale = Scale::new(quick);
    let spec = TraceSpec::alibaba_like(SEED, CATALOG.len(), scale.peak_rate_per_s);
    let tb = Testbed::atom();

    // Offline phase on its own unbounded engine: the database is a fixed
    // artifact; only the streaming shard engines carry the budget.
    eprintln!("[fleet_scale] building the configuration database…");
    let db_engine = EvalEngine::atom();
    let db = ConfigDatabase::build_subset(
        &db_engine,
        &CATALOG,
        &[ecost_apps::InputSize::Small],
        0.0,
        SEED,
    )?;
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    let pairing = PairingPolicy::default();
    let cx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: PairingMode::DecisionTree,
    };

    // Single-shard identity prologue: a 1-shard fleet on a trace prefix
    // must be bit-identical to the monolithic calendar driver.
    eprintln!("[fleet_scale] asserting single-shard identity on {IDENTITY_ARRIVALS} arrivals…");
    let prefix: Vec<OpenArrival> = TraceStream::new(&spec)?
        .take(IDENTITY_ARRIVALS)
        .map(to_open)
        .collect();
    let mono_engine = EvalEngine::atom();
    let mono = run_ecost_open_stream(
        &mono_engine,
        IDENTITY_NODES,
        &prefix,
        OpenOptions::default(),
        &cx,
        &FaultSetup::default(),
    )?;
    let one = run_fleet(
        &tb,
        &FleetConfig::rendezvous(1, IDENTITY_NODES, SEED),
        prefix.iter().copied(),
        &cx,
        &ecost_telemetry::Recorder::noop(),
    )?;
    one.assert_single_shard_identity(&mono)?;
    drop(prefix);

    let mut arms: Vec<ArmOut> = Vec::new();
    for (name, route) in [
        ("rendezvous", RoutePolicy::Rendezvous { seed: SEED }),
        ("least_outstanding", RoutePolicy::LeastOutstanding),
    ] {
        eprintln!(
            "[fleet_scale] {name} arm: {} arrivals on {} shards × {} nodes…",
            scale.arrivals, scale.shards, scale.nodes_per_shard
        );
        let cfg = FleetConfig {
            route,
            cache_budget: CacheBudget::entries(scale.budget),
            ..FleetConfig::rendezvous(scale.shards, scale.nodes_per_shard, SEED)
        };
        // The stream is rebuilt per arm from the seed — never collected.
        let stream = TraceStream::new(&spec)?.take(scale.arrivals).map(to_open);
        let t0 = Instant::now();
        let fleet = run_fleet(&tb, &cfg, stream, &cx, &ecost_telemetry::Recorder::noop())?;
        arms.push(ArmOut {
            name,
            fleet,
            wall_s: t0.elapsed().as_secs_f64(),
        });
    }
    for arm in &arms {
        check_bounds(arm, scale.arrivals)?;
    }

    // One decision per routed arrival: a shard assignment plus a full
    // profile → classify → pair → tune placement. The rendezvous arm is
    // the headline (class-affine routing is the fleet's default shape).
    let decisions_per_s = scale.arrivals as f64 / arms[0].wall_s.max(1e-9);
    let idle_w = tb.idle_w();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ecost-fleet-scale/1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"shards\": {},", scale.shards);
    let _ = writeln!(out, "  \"nodes_per_shard\": {},", scale.nodes_per_shard);
    let _ = writeln!(out, "  \"arrivals\": {},", scale.arrivals);
    let _ = writeln!(out, "  \"trace_seed\": {SEED},");
    let _ = writeln!(out, "  \"cache_budget_per_table\": {},", scale.budget);
    // Dispatch visibility (see scale_out): shard engines are built inside
    // `run_fleet` with default knobs, so the process-level detection and
    // lane cap are exactly what every shard ran with.
    let _ = writeln!(
        out,
        "  \"batch_lanes\": {},",
        ecost_mapreduce::MAX_BATCH_LANES
    );
    let _ = writeln!(
        out,
        "  \"simd_backend\": \"{}\",",
        ecost_sim::SimdBackend::detect().name()
    );
    let _ = writeln!(out, "  \"single_shard_identity\": \"ok\",");
    let _ = writeln!(out, "{},", arms[0].json(idle_w));
    let _ = writeln!(out, "{}", arms[1].json(idle_w));
    out.push_str("}\n");

    let dir = Ctx::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("fleet.json");
    std::fs::write(&path, &out)?;
    println!("{out}");
    for arm in &arms {
        println!(
            "fleet_scale[{}]: {} arrivals / {} shards — {:.0} decisions/s (wall {:.2}s), \
             peak epoch batch {}, {} epochs, {} evictions",
            arm.name,
            scale.arrivals,
            scale.shards,
            scale.arrivals as f64 / arm.wall_s.max(1e-9),
            arm.wall_s,
            arm.fleet.peak_epoch_arrivals,
            arm.fleet.epochs,
            arm.fleet.stats.evictions
        );
    }
    eprintln!("[fleet_scale] wrote {}", path.display());

    let trend_path = append_trend_row(quick, decisions_per_s)?;
    eprintln!("[fleet_scale] appended trend row to {trend_path}");
    Ok(())
}

fn main() -> ExitCode {
    ecost_bench::run_main("fleet_scale", run)
}
