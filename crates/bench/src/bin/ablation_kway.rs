//! Regenerates the paper artifact `ablation_kway` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("ablation_kway", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::ablation_kway(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("ablation_kway_{i}"))?;
        }
        Ok(())
    })
}
