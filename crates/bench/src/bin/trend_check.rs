//! Throughput-regression gate over the `BENCH_trend.jsonl` trend store.
//!
//! `bench_report` and `scale_out` append one compact row per run (schema
//! `ecost-bench-trend/1`); this binary compares the newest row against the
//! *median* of the last (up to) three comparable earlier rows — same
//! `mode`, `arms`, `threads` and `simd` context (a row without a `simd`
//! field only compares against rows that also lack one, so rows from
//! before the SIMD kernel never gate its arms), so quick CI rows never
//! gate against full workstation rows — and fails (non-zero exit) when
//! any kernel's
//! throughput dropped by more than the tolerance (`ECOST_TREND_TOL`,
//! default 0.10 = 10%). The median reference makes the gate robust to a
//! single anomalously fast prior row (a noisy-neighbour lull would
//! otherwise ratchet the baseline up and flag the next honest run).
//!
//! Usage: `trend_check [path]` (default `BENCH_trend.jsonl`).
//!
//! Exit codes: `0` when every compared metric is within tolerance, `2`
//! ("no data") when there is nothing to gate — the store is missing,
//! empty, has no comparable prior row for the newest row's (mode, arms,
//! threads, simd) context, or the comparable priors share no metric key
//! with the newest row — and `1` on a regression or a malformed
//! store. Callers that treat a seeding run as acceptable should accept
//! exit 2 explicitly (CI does: `trend_check || [ $? -eq 2 ]`).
//!
//! The rows are written by our own writer with stable key order, so the
//! "parser" here is a deliberately minimal key scanner, not a general
//! JSON reader — the repo hand-rolls its JSON in both directions.

use ecost_bench::BenchError;
use std::process::ExitCode;

/// Headline throughput keys a row may carry (absent arms are skipped).
const METRICS: [&str; 16] = [
    "solo_baseline_sims_per_s",
    "solo_optimized_sims_per_s",
    "solo_batched_sims_per_s",
    "solo_simd_off_sims_per_s",
    "pair_baseline_sims_per_s",
    "pair_optimized_sims_per_s",
    "pair_batched_sims_per_s",
    "pair_batch_resident_sims_per_s",
    "pair_warm_start_sims_per_s",
    "pair_simd_off_sims_per_s",
    "sched_baseline_sims_per_s",
    "sched_optimized_sims_per_s",
    "sched_batched_sims_per_s",
    "scale_decisions_per_s",
    "service_decisions_per_s",
    "fleet_decisions_per_s",
];

/// How many comparable prior rows feed the reference median.
const WINDOW: usize = 3;

/// Median of a non-empty sample; an even count averages the middle two.
/// Returns `None` on an empty slice (metric absent from every prior row).
fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    Some(if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    })
}

/// Extract a string field from a compact single-line JSON row.
fn field_str<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extract a numeric field from a compact single-line JSON row.
fn field_f64(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The comparability context of a row: rows only gate against rows that
/// measured the same thing on the same parallelism with the same kernel.
/// `simd` is optional — rows predating the SIMD kernel have no such
/// field, and `None` only matches `None`, so old seed rows never gate
/// (or get gated by) the SIMD-era arms.
fn context(row: &str) -> Option<(String, String, u64, Option<String>)> {
    Some((
        field_str(row, "mode")?.to_string(),
        field_str(row, "arms")?.to_string(),
        field_f64(row, "threads")? as u64,
        field_str(row, "simd").map(str::to_string),
    ))
}

fn run() -> Result<(), BenchError> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trend.jsonl".into());
    let tol: f64 = match std::env::var("ECOST_TREND_TOL") {
        Ok(v) => v
            .parse()
            .map_err(|_| BenchError::Invalid(format!("ECOST_TREND_TOL={v:?} is not a number")))?,
        Err(_) => 0.10,
    };
    check(&path, tol)
}

/// The gate proper, separated from env/arg parsing for unit testing.
fn check(path: &str, tol: f64) -> Result<(), BenchError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(BenchError::NoData(format!(
                "{path}: trend store not found — run a bench first to seed it"
            )));
        }
        Err(e) => return Err(BenchError::Io(e)),
    };
    let rows: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let (last, prior) = rows
        .split_last()
        .ok_or_else(|| BenchError::NoData(format!("{path}: trend store has no rows")))?;
    if field_str(last, "schema") != Some("ecost-bench-trend/1") {
        return Err(BenchError::Invalid(format!(
            "{path}: newest row has unknown schema (want ecost-bench-trend/1)"
        )));
    }
    let ctx = context(last).ok_or_else(|| {
        BenchError::Invalid(format!("{path}: newest row lacks mode/arms/threads"))
    })?;
    let prevs: Vec<&&str> = prior
        .iter()
        .rev()
        .filter(|r| context(r).as_ref() == Some(&ctx))
        .take(WINDOW)
        .collect();
    if prevs.is_empty() {
        return Err(BenchError::NoData(format!(
            "{path}: no prior row with mode={} arms={} threads={} simd={} — this row seeds \
             the trend",
            ctx.0,
            ctx.1,
            ctx.2,
            ctx.3.as_deref().unwrap_or("<absent>")
        )));
    }
    let commits = prevs
        .iter()
        .map(|r| field_str(r, "commit").unwrap_or("?"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut regressions: Vec<String> = Vec::new();
    let mut compared = 0u32;
    for key in METRICS {
        let Some(new) = field_f64(last, key) else {
            continue;
        };
        let mut sample: Vec<f64> = prevs.iter().filter_map(|r| field_f64(r, key)).collect();
        let Some(old) = median(&mut sample) else {
            continue;
        };
        compared += 1;
        if old > 0.0 && new < old * (1.0 - tol) {
            regressions.push(format!(
                "{key}: median {old:.1} -> {new:.1} ({:+.1}%)",
                100.0 * (new - old) / old
            ));
        }
    }
    if regressions.is_empty() {
        if compared == 0 {
            return Err(BenchError::NoData(format!(
                "{path}: comparable prior rows share no metric key with the newest row — \
                 nothing to gate"
            )));
        }
        println!(
            "trend_check: {compared} metrics within {:.0}% of the median of {} prior rows \
             in {} (commits {})",
            tol * 100.0,
            prevs.len(),
            path,
            commits
        );
        Ok(())
    } else {
        Err(BenchError::Invalid(format!(
            "throughput regression vs the median of {} prior rows (commits {}, tolerance \
             {:.0}%): {}",
            prevs.len(),
            commits,
            tol * 100.0,
            regressions.join("; ")
        )))
    }
}

fn main() -> ExitCode {
    ecost_bench::run_main("trend_check", run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_sample_is_the_middle_value() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&mut [5.0]), Some(5.0));
    }

    #[test]
    fn median_of_even_sample_averages_the_middle_two() {
        assert_eq!(median(&mut [4.0, 1.0]), Some(2.5));
        assert_eq!(median(&mut [1.0, 9.0, 3.0, 5.0]), Some(4.0));
    }

    #[test]
    fn median_of_empty_sample_is_none() {
        assert_eq!(median(&mut []), None);
    }

    #[test]
    fn one_fast_outlier_does_not_ratchet_the_reference() {
        // Rows 100, 100, 140: a single lucky run. The median reference is
        // 100, so a new row at 95 sits within a 10% tolerance — the
        // newest-row-only policy would have gated 95 against 140.
        let m = median(&mut [100.0, 140.0, 100.0]).unwrap();
        assert_eq!(m, 100.0);
        assert!(95.0 >= m * (1.0 - 0.10));
    }

    fn write_store(name: &str, rows: &[&str]) -> String {
        let dir = std::env::temp_dir().join("ecost_trend_check_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join(name);
        std::fs::write(&path, rows.join("\n")).expect("write store");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn missing_store_is_no_data() {
        match check("/nonexistent/ecost/trend.jsonl", 0.10) {
            Err(BenchError::NoData(msg)) => assert!(msg.contains("not found"), "{msg}"),
            other => panic!("expected NoData, got {other:?}"),
        }
    }

    #[test]
    fn empty_store_is_no_data() {
        let path = write_store("empty.jsonl", &[""]);
        match check(&path, 0.10) {
            Err(BenchError::NoData(msg)) => assert!(msg.contains("no rows"), "{msg}"),
            other => panic!("expected NoData, got {other:?}"),
        }
    }

    #[test]
    fn no_comparable_prior_row_is_no_data() {
        let row_full = r#"{"schema":"ecost-bench-trend/1","commit":"a","mode":"full","arms":"scale","threads":1,"scale_decisions_per_s":100.0}"#;
        let row_quick = r#"{"schema":"ecost-bench-trend/1","commit":"b","mode":"quick","arms":"scale","threads":1,"scale_decisions_per_s":100.0}"#;
        let path = write_store("seeding.jsonl", &[row_full, row_quick]);
        match check(&path, 0.10) {
            Err(BenchError::NoData(msg)) => assert!(msg.contains("seeds the trend"), "{msg}"),
            other => panic!("expected NoData, got {other:?}"),
        }
    }

    #[test]
    fn comparable_rows_within_tolerance_pass_and_regressions_fail() {
        let prior = r#"{"schema":"ecost-bench-trend/1","commit":"a","mode":"quick","arms":"scale","threads":1,"scale_decisions_per_s":100.0}"#;
        let ok = r#"{"schema":"ecost-bench-trend/1","commit":"b","mode":"quick","arms":"scale","threads":1,"scale_decisions_per_s":95.0}"#;
        let bad = r#"{"schema":"ecost-bench-trend/1","commit":"c","mode":"quick","arms":"scale","threads":1,"scale_decisions_per_s":50.0}"#;
        let path = write_store("gate_ok.jsonl", &[prior, ok]);
        assert!(check(&path, 0.10).is_ok());
        let path = write_store("gate_bad.jsonl", &[prior, bad]);
        match check(&path, 0.10) {
            Err(BenchError::Invalid(msg)) => assert!(msg.contains("regression"), "{msg}"),
            other => panic!("expected Invalid regression, got {other:?}"),
        }
    }

    #[test]
    fn row_fields_parse() {
        let row = r#"{"schema":"ecost-bench-trend/1","commit":"abc","mode":"quick","arms":"scale","threads":1,"scale_decisions_per_s":51455.3}"#;
        assert_eq!(field_str(row, "commit"), Some("abc"));
        assert_eq!(field_f64(row, "scale_decisions_per_s"), Some(51455.3));
        assert_eq!(
            context(row),
            Some(("quick".into(), "scale".into(), 1, None))
        );
        let row = r#"{"schema":"ecost-bench-trend/1","commit":"abc","mode":"full","arms":"all","threads":2,"simd":"on","pair_batched_sims_per_s":9.0}"#;
        assert_eq!(
            context(row),
            Some(("full".into(), "all".into(), 2, Some("on".into())))
        );
    }

    #[test]
    fn simd_context_splits_comparability_from_pre_simd_rows() {
        // A seed row written before the simd field existed must not gate
        // the first simd-era row, even though mode/arms/threads match and
        // the metric key is shared (with a large apparent drop).
        let old = r#"{"schema":"ecost-bench-trend/1","commit":"a","mode":"quick","arms":"all","threads":1,"pair_batched_sims_per_s":100.0}"#;
        let new = r#"{"schema":"ecost-bench-trend/1","commit":"b","mode":"quick","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":50.0}"#;
        let path = write_store("simd_split.jsonl", &[old, new]);
        match check(&path, 0.10) {
            Err(BenchError::NoData(msg)) => assert!(msg.contains("seeds the trend"), "{msg}"),
            other => panic!("expected NoData, got {other:?}"),
        }
        // And the two simd settings never gate each other.
        let on = r#"{"schema":"ecost-bench-trend/1","commit":"c","mode":"quick","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":100.0}"#;
        let off = r#"{"schema":"ecost-bench-trend/1","commit":"d","mode":"quick","arms":"all","threads":1,"simd":"off","pair_batched_sims_per_s":50.0}"#;
        let path = write_store("simd_on_off.jsonl", &[on, off]);
        match check(&path, 0.10) {
            Err(BenchError::NoData(msg)) => assert!(msg.contains("seeds the trend"), "{msg}"),
            other => panic!("expected NoData, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_drop_in_a_simd_row_fails_the_gate() {
        let mk = |commit: &str, rate: f64| {
            format!(
                r#"{{"schema":"ecost-bench-trend/1","commit":"{commit}","mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":{rate:.1},"pair_simd_off_sims_per_s":{:.1}}}"#,
                rate / 2.0
            )
        };
        let rows = [mk("a", 1000.0), mk("b", 1010.0), mk("c", 990.0)];
        let held = mk("d", 960.0);
        let path = write_store("simd_gate_ok.jsonl", &[&rows[0], &rows[1], &rows[2], &held]);
        assert!(check(&path, 0.10).is_ok());
        // >10% drop in the simd arm (and its shadow) must fail.
        let dropped = mk("e", 500.0);
        let path = write_store(
            "simd_gate_bad.jsonl",
            &[&rows[0], &rows[1], &rows[2], &dropped],
        );
        match check(&path, 0.10) {
            Err(BenchError::Invalid(msg)) => {
                assert!(msg.contains("pair_batched_sims_per_s"), "{msg}");
                assert!(msg.contains("pair_simd_off_sims_per_s"), "{msg}");
            }
            other => panic!("expected Invalid regression, got {other:?}"),
        }
    }

    #[test]
    fn resident_keys_are_additive_and_old_rows_never_gate_them() {
        // A pre-resident row (no pair_batch_resident / pair_warm_start
        // keys) shares its context AND its pair_batched key with the first
        // resident-era row. The shared key still gates; the new keys are
        // simply skipped (no prior sample), so an old store can never
        // flag — or hide — a change in the new arms.
        let old = r#"{"schema":"ecost-bench-trend/1","commit":"a","mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":100.0}"#;
        let new = r#"{"schema":"ecost-bench-trend/1","commit":"b","mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":98.0,"pair_batch_resident_sims_per_s":150.0,"pair_warm_start_sims_per_s":170.0}"#;
        let path = write_store("resident_additive_ok.jsonl", &[old, new]);
        assert!(check(&path, 0.10).is_ok());
        // Same store, but the shared legacy key regressed: still caught,
        // and the complaint names only the key with a prior sample.
        let bad = r#"{"schema":"ecost-bench-trend/1","commit":"c","mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":50.0,"pair_batch_resident_sims_per_s":1.0,"pair_warm_start_sims_per_s":1.0}"#;
        let path = write_store("resident_additive_bad.jsonl", &[old, bad]);
        match check(&path, 0.10) {
            Err(BenchError::Invalid(msg)) => {
                assert!(msg.contains("pair_batched_sims_per_s"), "{msg}");
                assert!(!msg.contains("pair_batch_resident_sims_per_s"), "{msg}");
                assert!(!msg.contains("pair_warm_start_sims_per_s"), "{msg}");
            }
            other => panic!("expected Invalid regression, got {other:?}"),
        }
    }

    #[test]
    fn resident_rows_gate_each_other_and_tolerate_dirty_field() {
        // Two resident-era rows (with the new `dirty` context field the
        // writer now emits): the new keys now have prior samples, so a
        // drop in pair_batch_resident alone fails the gate.
        let prior = r#"{"schema":"ecost-bench-trend/1","commit":"a","dirty":false,"mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":100.0,"pair_batch_resident_sims_per_s":150.0,"pair_warm_start_sims_per_s":170.0}"#;
        let held = r#"{"schema":"ecost-bench-trend/1","commit":"b","dirty":true,"mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":100.0,"pair_batch_resident_sims_per_s":145.0,"pair_warm_start_sims_per_s":165.0}"#;
        let path = write_store("resident_gate_ok.jsonl", &[prior, held]);
        assert!(check(&path, 0.10).is_ok());
        let dropped = r#"{"schema":"ecost-bench-trend/1","commit":"c","dirty":false,"mode":"full","arms":"all","threads":1,"simd":"on","pair_batched_sims_per_s":100.0,"pair_batch_resident_sims_per_s":90.0,"pair_warm_start_sims_per_s":165.0}"#;
        let path = write_store("resident_gate_bad.jsonl", &[prior, dropped]);
        match check(&path, 0.10) {
            Err(BenchError::Invalid(msg)) => {
                assert!(msg.contains("pair_batch_resident_sims_per_s"), "{msg}");
                assert!(!msg.contains("pair_warm_start_sims_per_s"), "{msg}");
            }
            other => panic!("expected Invalid regression, got {other:?}"),
        }
    }

    #[test]
    fn prior_keys_absent_from_the_newest_row_are_no_data() {
        // Same context, but the newest row carries none of the priors'
        // metric keys (and vice versa): nothing is comparable, which must
        // surface as exit-2 "no data", not a silent pass.
        let old = r#"{"schema":"ecost-bench-trend/1","commit":"a","mode":"quick","arms":"scale","threads":1,"scale_decisions_per_s":100.0}"#;
        let new = r#"{"schema":"ecost-bench-trend/1","commit":"b","mode":"quick","arms":"scale","threads":1,"fleet_decisions_per_s":100.0}"#;
        let path = write_store("key_mismatch.jsonl", &[old, new]);
        match check(&path, 0.10) {
            Err(BenchError::NoData(msg)) => assert!(msg.contains("no metric key"), "{msg}"),
            other => panic!("expected NoData, got {other:?}"),
        }
    }
}
