//! Throughput-regression gate over the `BENCH_trend.jsonl` trend store.
//!
//! `bench_report` appends one compact row per run (schema
//! `ecost-bench-trend/1`); this binary compares the newest row against the
//! most recent *comparable* earlier row — same `mode`, `arms` and
//! `threads`, so quick CI rows never gate against full workstation rows —
//! and fails (non-zero exit) when any kernel's `sims_per_s` dropped by
//! more than the tolerance (`ECOST_TREND_TOL`, default 0.10 = 10%).
//!
//! Usage: `trend_check [path]` (default `BENCH_trend.jsonl`). A store
//! with no comparable prior row passes vacuously: the first row of any
//! (mode, arms, threads) context seeds the trend, it cannot regress.
//!
//! The rows are written by our own writer with stable key order, so the
//! "parser" here is a deliberately minimal key scanner, not a general
//! JSON reader — the repo hand-rolls its JSON in both directions.

use ecost_bench::BenchError;
use std::process::ExitCode;

/// Headline throughput keys a row may carry (absent arms are skipped).
const METRICS: [&str; 9] = [
    "solo_baseline_sims_per_s",
    "solo_optimized_sims_per_s",
    "solo_batched_sims_per_s",
    "pair_baseline_sims_per_s",
    "pair_optimized_sims_per_s",
    "pair_batched_sims_per_s",
    "sched_baseline_sims_per_s",
    "sched_optimized_sims_per_s",
    "sched_batched_sims_per_s",
];

/// Extract a string field from a compact single-line JSON row.
fn field_str<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extract a numeric field from a compact single-line JSON row.
fn field_f64(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The comparability context of a row: rows only gate against rows that
/// measured the same thing on the same parallelism.
fn context(row: &str) -> Option<(String, String, u64)> {
    Some((
        field_str(row, "mode")?.to_string(),
        field_str(row, "arms")?.to_string(),
        field_f64(row, "threads")? as u64,
    ))
}

fn run() -> Result<(), BenchError> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trend.jsonl".into());
    let tol: f64 = match std::env::var("ECOST_TREND_TOL") {
        Ok(v) => v
            .parse()
            .map_err(|_| BenchError::Invalid(format!("ECOST_TREND_TOL={v:?} is not a number")))?,
        Err(_) => 0.10,
    };
    let text = std::fs::read_to_string(&path)?;
    let rows: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let (last, prior) = rows
        .split_last()
        .ok_or_else(|| BenchError::Invalid(format!("{path}: trend store has no rows")))?;
    if field_str(last, "schema") != Some("ecost-bench-trend/1") {
        return Err(BenchError::Invalid(format!(
            "{path}: newest row has unknown schema (want ecost-bench-trend/1)"
        )));
    }
    let ctx = context(last).ok_or_else(|| {
        BenchError::Invalid(format!("{path}: newest row lacks mode/arms/threads"))
    })?;
    let Some(prev) = prior
        .iter()
        .rev()
        .find(|r| context(r).as_ref() == Some(&ctx))
    else {
        println!(
            "trend_check: no prior row with mode={} arms={} threads={} — seeding, nothing to gate",
            ctx.0, ctx.1, ctx.2
        );
        return Ok(());
    };
    let mut regressions: Vec<String> = Vec::new();
    let mut compared = 0u32;
    for key in METRICS {
        let (Some(old), Some(new)) = (field_f64(prev, key), field_f64(last, key)) else {
            continue;
        };
        compared += 1;
        if old > 0.0 && new < old * (1.0 - tol) {
            regressions.push(format!(
                "{key}: {old:.1} -> {new:.1} ({:+.1}%)",
                100.0 * (new - old) / old
            ));
        }
    }
    if regressions.is_empty() {
        println!(
            "trend_check: {compared} metrics within {:.0}% of {} (commit {})",
            tol * 100.0,
            path,
            field_str(prev, "commit").unwrap_or("?")
        );
        Ok(())
    } else {
        Err(BenchError::Invalid(format!(
            "throughput regression vs commit {} (tolerance {:.0}%): {}",
            field_str(prev, "commit").unwrap_or("?"),
            tol * 100.0,
            regressions.join("; ")
        )))
    }
}

fn main() -> ExitCode {
    ecost_bench::run_main("trend_check", run)
}
