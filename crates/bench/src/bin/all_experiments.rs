//! Runs every paper artifact in sequence (Fig 1–9, Tables 1–2, ablations)
//! and writes the outputs under `results/`. The shared context means the
//! expensive offline phase (sweeps, model training) happens once.

use ecost_apps::InputSize;
use ecost_bench::experiments as ex;
use ecost_bench::harness::Ctx;
use ecost_bench::BenchError;
use ecost_core::report::{emit, Table};
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("all_experiments", || {
        let mut ctx = Ctx::new();
        let dir = Ctx::results_dir();
        let run = |name: &str, tables: Vec<Table>| -> Result<(), BenchError> {
            eprintln!("=== {name} ===");
            for (i, t) in tables.iter().enumerate() {
                emit(t, &dir, &format!("{name}_{i}"))?;
            }
            Ok(())
        };
        run("fig1_pca", ex::fig1_pca(&mut ctx))?;
        run("fig2_tuning", ex::fig2_tuning(&mut ctx))?;
        run("fig3_colao_ilao", ex::fig3_colao_ilao(&mut ctx))?;
        run("fig5_priority", ex::fig5_priority(&mut ctx))?;
        run("table1_ape", ex::table1_ape(&mut ctx))?;
        run("table2_configs", ex::table2_configs(&mut ctx))?;
        run("fig8_overhead", ex::fig8_overhead(&mut ctx))?;
        let nodes: Result<Vec<usize>, BenchError> = std::env::var("ECOST_NODES")
            .unwrap_or_else(|_| "1,2,4,8".into())
            .split(',')
            .map(|s| {
                s.trim().parse().map_err(|_| {
                    BenchError::Invalid(format!("bad node count '{}' in ECOST_NODES", s.trim()))
                })
            })
            .collect();
        run(
            "fig9_scalability",
            ex::fig9_scalability(&mut ctx, &nodes?, InputSize::Small),
        )?;
        run("ablation_kway", ex::ablation_kway(&mut ctx))?;
        run("ablation_pairing", ex::ablation_pairing(&mut ctx))?;
        run("ablation_job_cap", ex::ablation_job_cap(&mut ctx))?;
        run("extension_open_queue", ex::extension_open_queue(&mut ctx))?;
        run("extension_xeon", ex::extension_xeon(&mut ctx))?;
        eprintln!("=== chaos ===");
        let (tables, json) = ex::chaos(&mut ctx);
        for (i, t) in tables.iter().enumerate() {
            emit(t, &dir, &format!("chaos_{i}"))?;
        }
        std::fs::write(dir.join("chaos.json"), &json)?;
        eprintln!("all experiments written to {}", dir.display());
        Ok(())
    })
}
