//! `ecost_cli` — command-line front end to the ECoST library.
//!
//! ```text
//! ecost_cli apps                       # list the catalog with classes
//! ecost_cli profile <app> [gb]         # learning period + classification
//! ecost_cli tune <app> [gb]            # best standalone config (ILAO step)
//! ecost_cli pair <a> <b> [gb]          # COLAO oracle for a pair
//! ecost_cli sweep <app> [gb]           # full 160-point EDP sweep as CSV
//! ```
//!
//! Sizes are per-node GB ∈ {1, 5, 10} (default 5). All simulation, all
//! deterministic — handy for poking at the model without writing code.

use ecost_apps::catalog::ALL_APPS;
use ecost_apps::{App, InputSize};
use ecost_bench::BenchError;
use ecost_core::classify::RuleClassifier;
use ecost_core::engine::EvalEngine;
use ecost_core::features::profile_catalog_app;
use ecost_mapreduce::{Feature, TuningConfig};
use std::process::ExitCode;

fn parse_size(arg: Option<&String>) -> InputSize {
    match arg.map(String::as_str) {
        Some("1") => InputSize::Small,
        Some("10") => InputSize::Large,
        None | Some("5") => InputSize::Medium,
        Some(other) => {
            eprintln!("unknown size '{other}' (expected 1, 5 or 10); using 5");
            InputSize::Medium
        }
    }
}

fn parse_app(arg: Option<&String>) -> App {
    let Some(name) = arg else {
        eprintln!("missing application name; try `ecost_cli apps`");
        std::process::exit(2);
    };
    match App::from_name(name) {
        Some(a) => a,
        None => {
            eprintln!("unknown application '{name}'; try `ecost_cli apps`");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    ecost_bench::run_main("ecost_cli", run)
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let eng = EvalEngine::atom();
    let idle = eng.idle_w();
    match args.first().map(String::as_str) {
        Some("apps") => {
            println!("{:<6} {:<6} role", "name", "class");
            for app in ALL_APPS {
                println!(
                    "{:<6} {:<6} {}",
                    app.name(),
                    app.class(),
                    if app.is_training() {
                        "training (known)"
                    } else {
                        "test (unknown)"
                    }
                );
            }
        }
        Some("profile") => {
            let app = parse_app(args.get(1));
            let size = parse_size(args.get(2));
            let sig = profile_catalog_app(&eng, app, size, 0.03, 42)?;
            println!(
                "learning period for {app} at {size}: {:.1}s",
                sig.profile_time_s
            );
            for feat in Feature::ALL {
                println!("  {:<18} {:>10.2}", feat.name(), sig.features.get(feat));
            }
            // Classify against the training set.
            let mut training = Vec::new();
            for t in ecost_apps::TRAINING_APPS {
                for s in InputSize::ALL {
                    let tsig = profile_catalog_app(&eng, t, s, 0.03, 42)?;
                    training.push((tsig, t.class()));
                }
            }
            let rc = RuleClassifier::fit(&training);
            println!(
                "classified as {} (ground truth {})",
                rc.classify(&sig.features),
                app.class()
            );
        }
        Some("tune") => {
            let app = parse_app(args.get(1));
            let size = parse_size(args.get(2));
            let best = eng.best_solo(app.profile(), size.per_node_mb())?;
            let default = eng.solo_metrics(
                app.profile(),
                size.per_node_mb(),
                TuningConfig::hadoop_default(eng.testbed().node.cores),
            )?;
            println!(
                "best standalone config for {app} at {size}: {}",
                best.config
            );
            println!(
                "  T={:.0}s  Pdyn={:.2}W  wall EDP {:.3e} ({:.1}% better than untuned defaults)",
                best.metrics.exec_time_s,
                best.metrics.avg_power_w,
                best.metrics.edp_wall(idle),
                100.0 * (1.0 - best.metrics.edp_wall(idle) / default.edp_wall(idle)),
            );
        }
        Some("pair") => {
            let a = parse_app(args.get(1));
            let b = parse_app(args.get(2));
            let size = parse_size(args.get(3));
            let mb = size.per_node_mb();
            let best = eng.best_pair(a.profile(), mb, b.profile(), mb)?;
            let ilao = ecost_core::strategies::ilao(&eng, a.profile(), mb, b.profile(), mb)?;
            println!("COLAO oracle for {a}+{b} at {size} (11 200 configs swept):");
            println!("  {a}: {}", best.config.a);
            println!("  {b}: {}", best.config.b);
            println!(
                "  makespan {:.0}s, wall EDP {:.3e} — {:.2}x better than serial ILAO",
                best.metrics.makespan_s,
                best.metrics.edp_wall(idle),
                ilao.metrics.edp_wall(idle) / best.metrics.edp_wall(idle),
            );
        }
        Some("sweep") => {
            let app = parse_app(args.get(1));
            let size = parse_size(args.get(2));
            println!("freq_ghz,block_mb,mappers,exec_s,power_w,edp_wall");
            for run in eng.sweep_solo(app.profile(), size.per_node_mb())? {
                println!(
                    "{},{},{},{:.2},{:.3},{:.6e}",
                    run.config.freq.ghz(),
                    run.config.block.mb(),
                    run.config.mappers,
                    run.metrics.exec_time_s,
                    run.metrics.avg_power_w,
                    run.metrics.edp_wall(idle)
                );
            }
            let stats = eng.stats();
            eprintln!("[engine] {stats}");
        }
        _ => {
            eprintln!("usage: ecost_cli <apps|profile|tune|pair|sweep> [args…]");
            eprintln!("  apps                 list the application catalog");
            eprintln!("  profile <app> [gb]   learning period + classification");
            eprintln!("  tune <app> [gb]      best standalone configuration");
            eprintln!("  pair <a> <b> [gb]    COLAO oracle for a co-located pair");
            eprintln!("  sweep <app> [gb]     full 160-point EDP sweep (CSV)");
            std::process::exit(2);
        }
    }
    Ok(())
}
