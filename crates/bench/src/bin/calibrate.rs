//! Calibration probe: prints the headline shape metrics the reproduction
//! must exhibit (COLAO/ILAO ratio per class pair, knob sensitivities,
//! standalone optimal configs). Not part of the paper's tables; used while
//! tuning the substrate and kept as a regression aid.

use ecost_apps::{App, InputSize};
use ecost_bench::BenchError;
use ecost_mapreduce::executor::{run_colocated, run_standalone};
use ecost_mapreduce::{FrameworkSpec, JobSpec, PairConfig, PairMetrics, TuningConfig};
use ecost_sim::NodeSpec;
use rayon::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("calibrate", run)
}

fn run() -> Result<(), BenchError> {
    let spec = NodeSpec::atom_c2758();
    let fw = FrameworkSpec::default();
    let idle = spec.idle_power_w;

    println!("== standalone optimal configs (wall EDP, Medium) ==");
    let mut best_solo = std::collections::HashMap::new();
    for app in ecost_apps::catalog::ALL_APPS {
        let runs: Result<Vec<_>, BenchError> = TuningConfig::space(8)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|cfg| {
                let out = run_standalone(&spec, &fw, JobSpec::new(app, InputSize::Medium, *cfg))?;
                Ok((*cfg, out.metrics))
            })
            .collect();
        let (cfg, m) = runs?
            .into_iter()
            .min_by(|a, b| a.1.edp_wall(idle).total_cmp(&b.1.edp_wall(idle)))
            .ok_or_else(|| BenchError::Invalid("empty tuning space".into()))?;
        println!(
            "  {:4} [{}]  {}  T={:7.1}s  Pdyn={:5.2}W  EDPwall={:.3e}",
            app.name(),
            app.class(),
            cfg,
            m.exec_time_s,
            m.avg_power_w,
            m.edp_wall(idle)
        );
        best_solo.insert(app, (cfg, m));
    }

    println!("\n== COLAO vs ILAO per training pair (same size, Medium) ==");
    let training = [App::Wc, App::St, App::Gp, App::Ts, App::Fp];
    let pair_space = PairConfig::space(8);
    for (i, &a) in training.iter().enumerate() {
        for &b in &training[i..] {
            let (ca, ma) = best_solo[&a];
            let (cb, mb) = best_solo[&b];
            let _ = (ca, cb);
            let ilao = PairMetrics::serial(&[ma, mb]);
            let runs: Result<Vec<_>, BenchError> = pair_space
                .par_iter()
                .map(|pc| {
                    let jobs = vec![
                        JobSpec::new(a, InputSize::Medium, pc.a),
                        JobSpec::new(b, InputSize::Medium, pc.b),
                    ];
                    let (outs, makespan) = run_colocated(&spec, &fw, jobs)?;
                    let energy: f64 = outs.iter().map(|o| o.metrics.energy_j).sum();
                    Ok((
                        *pc,
                        PairMetrics {
                            makespan_s: makespan,
                            energy_j: energy,
                        },
                    ))
                })
                .collect();
            let (best_cfg, colao) = runs?
                .into_iter()
                .min_by(|x, y| x.1.edp_wall(idle).total_cmp(&y.1.edp_wall(idle)))
                .ok_or_else(|| BenchError::Invalid("empty pair space".into()))?;
            println!(
                "  {:3}-{:3} [{}-{}]  ratio={:5.2}x  CO: m=({},{}) f=({},{}) h=({},{})  T_co={:6.1} T_il={:6.1}",
                a.name(),
                b.name(),
                a.class(),
                b.class(),
                ilao.edp_wall(idle) / colao.edp_wall(idle),
                best_cfg.a.mappers,
                best_cfg.b.mappers,
                best_cfg.a.freq,
                best_cfg.b.freq,
                best_cfg.a.block,
                best_cfg.b.block,
                colao.makespan_s,
                ilao.makespan_s,
            );
        }
    }

    println!("\n== EDP sensitivity vs mappers (wc, Medium): gain of tuning h+f over h|f alone ==");
    for m in [1u32, 2, 4, 8] {
        let edp_of =
            |f: ecost_sim::Frequency, h: ecost_mapreduce::BlockSize| -> Result<f64, BenchError> {
                let cfg = TuningConfig {
                    freq: f,
                    block: h,
                    mappers: m,
                };
                Ok(
                    run_standalone(&spec, &fw, JobSpec::new(App::Wc, InputSize::Medium, cfg))?
                        .metrics
                        .edp_wall(idle),
                )
            };
        let base = edp_of(ecost_sim::Frequency::F1_2, ecost_mapreduce::BlockSize::B64)?;
        let mut best_h = f64::INFINITY;
        for h in ecost_mapreduce::BlockSize::ALL.iter() {
            best_h = best_h.min(edp_of(ecost_sim::Frequency::F1_2, *h)?);
        }
        let mut best_f = f64::INFINITY;
        for f in ecost_sim::Frequency::ALL.iter() {
            best_f = best_f.min(edp_of(*f, ecost_mapreduce::BlockSize::B64)?);
        }
        let mut best_hf = f64::INFINITY;
        for f in ecost_sim::Frequency::ALL.iter() {
            for h in ecost_mapreduce::BlockSize::ALL.iter() {
                best_hf = best_hf.min(edp_of(*f, *h)?);
            }
        }
        println!(
            "  m={m}: improv h-only={:5.1}%  f-only={:5.1}%  h+f={:5.1}%  (h+f vs best single: {:4.1}%)",
            100.0 * (1.0 - best_h / base),
            100.0 * (1.0 - best_f / base),
            100.0 * (1.0 - best_hf / base),
            100.0 * (1.0 - best_hf / best_h.min(best_f)),
        );
    }
    Ok(())
}
