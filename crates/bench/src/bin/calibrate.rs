//! Calibration probe: prints the headline shape metrics the reproduction
//! must exhibit (COLAO/ILAO ratio per class pair, knob sensitivities,
//! standalone optimal configs). Not part of the paper's tables; used while
//! tuning the substrate and kept as a regression aid.

use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::{run_colocated, run_standalone};
use ecost_mapreduce::{FrameworkSpec, JobSpec, PairConfig, PairMetrics, TuningConfig};
use ecost_sim::NodeSpec;
use rayon::prelude::*;

fn main() {
    let spec = NodeSpec::atom_c2758();
    let fw = FrameworkSpec::default();
    let idle = spec.idle_power_w;

    println!("== standalone optimal configs (wall EDP, Medium) ==");
    let mut best_solo = std::collections::HashMap::new();
    for app in ecost_apps::catalog::ALL_APPS {
        let (cfg, m) = TuningConfig::space(8)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|cfg| {
                let out = run_standalone(&spec, &fw, JobSpec::new(app, InputSize::Medium, *cfg))
                    .expect("sim");
                (*cfg, out.metrics)
            })
            .min_by(|a, b| {
                a.1.edp_wall(idle)
                    .partial_cmp(&b.1.edp_wall(idle))
                    .expect("finite")
            })
            .expect("non-empty");
        println!(
            "  {:4} [{}]  {}  T={:7.1}s  Pdyn={:5.2}W  EDPwall={:.3e}",
            app.name(),
            app.class(),
            cfg,
            m.exec_time_s,
            m.avg_power_w,
            m.edp_wall(idle)
        );
        best_solo.insert(app, (cfg, m));
    }

    println!("\n== COLAO vs ILAO per training pair (same size, Medium) ==");
    let training = [App::Wc, App::St, App::Gp, App::Ts, App::Fp];
    let pair_space = PairConfig::space(8);
    for (i, &a) in training.iter().enumerate() {
        for &b in &training[i..] {
            let (ca, ma) = best_solo[&a];
            let (cb, mb) = best_solo[&b];
            let _ = (ca, cb);
            let ilao = PairMetrics::serial(&[ma, mb]);
            let (best_cfg, colao) = pair_space
                .par_iter()
                .map(|pc| {
                    let jobs = vec![
                        JobSpec::new(a, InputSize::Medium, pc.a),
                        JobSpec::new(b, InputSize::Medium, pc.b),
                    ];
                    let (outs, makespan) = run_colocated(&spec, &fw, jobs).expect("sim");
                    let energy: f64 = outs.iter().map(|o| o.metrics.energy_j).sum();
                    (
                        *pc,
                        PairMetrics {
                            makespan_s: makespan,
                            energy_j: energy,
                        },
                    )
                })
                .min_by(|x, y| {
                    x.1.edp_wall(idle)
                        .partial_cmp(&y.1.edp_wall(idle))
                        .expect("finite")
                })
                .expect("non-empty");
            println!(
                "  {:3}-{:3} [{}-{}]  ratio={:5.2}x  CO: m=({},{}) f=({},{}) h=({},{})  T_co={:6.1} T_il={:6.1}",
                a.name(),
                b.name(),
                a.class(),
                b.class(),
                ilao.edp_wall(idle) / colao.edp_wall(idle),
                best_cfg.a.mappers,
                best_cfg.b.mappers,
                best_cfg.a.freq,
                best_cfg.b.freq,
                best_cfg.a.block,
                best_cfg.b.block,
                colao.makespan_s,
                ilao.makespan_s,
            );
        }
    }

    println!("\n== EDP sensitivity vs mappers (wc, Medium): gain of tuning h+f over h|f alone ==");
    for m in [1u32, 2, 4, 8] {
        let edp_of = |f: ecost_sim::Frequency, h: ecost_mapreduce::BlockSize| {
            let cfg = TuningConfig {
                freq: f,
                block: h,
                mappers: m,
            };
            run_standalone(&spec, &fw, JobSpec::new(App::Wc, InputSize::Medium, cfg))
                .expect("sim")
                .metrics
                .edp_wall(idle)
        };
        let base = edp_of(ecost_sim::Frequency::F1_2, ecost_mapreduce::BlockSize::B64);
        let best_h = ecost_mapreduce::BlockSize::ALL
            .iter()
            .map(|h| edp_of(ecost_sim::Frequency::F1_2, *h))
            .fold(f64::INFINITY, f64::min);
        let best_f = ecost_sim::Frequency::ALL
            .iter()
            .map(|f| edp_of(*f, ecost_mapreduce::BlockSize::B64))
            .fold(f64::INFINITY, f64::min);
        let best_hf = ecost_sim::Frequency::ALL
            .iter()
            .flat_map(|f| ecost_mapreduce::BlockSize::ALL.iter().map(move |h| (f, h)))
            .map(|(f, h)| edp_of(*f, *h))
            .fold(f64::INFINITY, f64::min);
        println!(
            "  m={m}: improv h-only={:5.1}%  f-only={:5.1}%  h+f={:5.1}%  (h+f vs best single: {:4.1}%)",
            100.0 * (1.0 - best_h / base),
            100.0 * (1.0 - best_f / base),
            100.0 * (1.0 - best_hf / base),
            100.0 * (1.0 - best_hf / best_h.min(best_f)),
        );
    }
}
