//! Regenerates the open-queue extension (see DESIGN.md §8).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("extension_open_queue", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::extension_open_queue(&mut ctx)
            .iter()
            .enumerate()
        {
            emit(
                table,
                Ctx::results_dir(),
                &format!("extension_open_queue_{i}"),
            )?;
        }
        Ok(())
    })
}
