//! `trace` — record one healthy ECoST schedule and one chaos schedule with
//! full telemetry, and export Chrome-trace JSON (open `results/trace_*.json`
//! in Perfetto / `chrome://tracing`), a per-node occupancy/Gantt summary,
//! and a text metrics report.
//!
//! All trace timestamps are simulated seconds — never wall clock — so the
//! JSON documents are byte-identical across same-seed runs; CI generates
//! them twice and diffs. Honors `ECOST_QUICK` and `ECOST_RESULTS`.

use ecost_apps::{App, InputSize, Workload};
use ecost_bench::harness::{Ctx, NOISE, SEED};
use ecost_bench::BenchError;
use ecost_core::engine::{EvalEngine, RetryPolicy};
use ecost_core::features::Testbed;
use ecost_core::mapping::{run_ecost_faulted, FaultSetup};
use ecost_core::EcostContext;
use ecost_sim::{ClusterSpec, FaultPlan, FaultSpec};
use ecost_telemetry::{chrome_trace_json, occupancy_summary, text_report, Recorder};
use std::process::ExitCode;

const NODES: usize = 2;

fn main() -> ExitCode {
    ecost_bench::run_main("trace", run)
}

fn run() -> Result<(), BenchError> {
    let ctx = Ctx::new();
    // The database and models are built on the harness's no-op engine so
    // the recorded traces show schedules, not the offline sweep.
    let db = ecost_core::database::ConfigDatabase::build_subset(
        &ctx.engine,
        &[App::Wc, App::St, App::Fp],
        &[InputSize::Small],
        NOISE,
        SEED,
    )?;
    let classifier = ecost_core::classify::RuleClassifier::fit(&db.signatures);
    let lkt = ecost_core::stp::LktStp::from_database(&db);
    let pairing = ecost_core::pairing::PairingPolicy::default();
    let ecx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: NOISE,
        seed: SEED,
        pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
    };
    let mut workload = Workload {
        name: "trace-mix".into(),
        jobs: vec![
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Fp, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Wc, InputSize::Small),
            (App::Fp, InputSize::Small),
        ],
    };
    if ctx.quick {
        workload.jobs.truncate(4);
    }
    let dir = Ctx::results_dir();
    std::fs::create_dir_all(&dir)?;

    // Schedule 1: healthy ECoST. Its makespan fixes the horizon chaos
    // faults are drawn in.
    let healthy_setup = FaultSetup {
        plan: FaultPlan::none(),
        retry: RetryPolicy::none(),
    };
    let (makespan, _) = record("ecost", &workload, &ecx, &healthy_setup, &dir)?;

    // Schedule 2: the same workload under a harsh sampled fault regime.
    let cluster = ClusterSpec::atom_cluster(NODES);
    let chaos_setup = FaultSetup {
        plan: FaultPlan::sample(&cluster, &FaultSpec::scaled(1.0, makespan), SEED),
        retry: RetryPolicy::default(),
    };
    record("chaos", &workload, &ecx, &chaos_setup, &dir)?;
    Ok(())
}

/// Run the workload on a fresh recording engine and export the trace.
/// Returns the run's makespan and the number of trace events recorded.
fn record(
    name: &str,
    workload: &Workload,
    ecx: &EcostContext<'_>,
    setup: &FaultSetup,
    dir: &std::path::Path,
) -> Result<(f64, usize), BenchError> {
    let eng = EvalEngine::with_recorder(Testbed::atom(), Recorder::recording());
    let out = run_ecost_faulted(&eng, NODES, workload, None, 2, ecx, setup)?;
    let events = eng.recorder().events();
    std::fs::write(
        dir.join(format!("trace_{name}.json")),
        chrome_trace_json(&events),
    )?;
    std::fs::write(
        dir.join(format!("trace_{name}_occupancy.txt")),
        occupancy_summary(&events),
    )?;
    std::fs::write(
        dir.join(format!("trace_{name}_report.txt")),
        text_report(&eng.recorder().metrics().snapshot()),
    )?;
    println!(
        "{name}: makespan {:.1}s, {} trace events, {} — open trace_{name}.json in Perfetto",
        out.run.makespan_s,
        events.len(),
        eng.stats()
    );
    Ok((out.run.makespan_s, events.len()))
}
