//! Trace-driven scale-out bench for the open-cluster scheduler.
//!
//! Replays a seeded Alibaba-style synthetic trace (phased Poisson
//! arrivals, Zipf app mix, bounded-Pareto input sizes — see
//! `ecost_sim::arrivals`) against a simulated cluster through the
//! event-calendar streaming driver, in two arms:
//!
//! * **untuned** — FIFO partners, half-node Hadoop defaults;
//! * **ecost** — the full pipeline (profile → classify → pair → tune)
//!   backed by a pre-built configuration database;
//! * **serviced** (`--serviced`) — the same pipeline behind the tuning
//!   service front (admission, deadlines, circuit breaker) with a
//!   healthy fault spec, to measure the service ladder's overhead.
//!
//! Both arms run on a *capacity-bounded* engine ([`CacheBudget`]): every
//! arrival carries its own continuous input size, so an unbounded memo
//! would grow with arrival history. The bin fails (non-zero exit) if the
//! resident entry count ever ends above the configured budget or if the
//! replay was too small to force evictions — the bench exists to prove
//! bounded-memory streaming, not just to time it.
//!
//! Outputs:
//!
//! * `results/scale_out.json` — fully deterministic document (no
//!   wall-clock fields); CI replays the same seed twice and byte-diffs it.
//! * one `BENCH_trend.jsonl` row (schema `ecost-bench-trend/1`, arms
//!   `"scale"`) carrying `scale_decisions_per_s`, gated by `trend_check`.
//!
//! `ECOST_QUICK=1` shrinks the replay for CI smoke runs (100 nodes /
//! 100k arrivals); the full mode runs 1000 nodes / 250k arrivals.

use ecost_apps::App;
use ecost_bench::harness::{Ctx, SEED};
use ecost_bench::BenchError;
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::{EngineStats, EvalEngine};
use ecost_core::mapping::{
    run_ecost_open_stream, run_ecost_open_stream_serviced, run_untuned_open_stream, FaultSetup,
    FaultedRun, OpenArrival, OpenOptions,
};
use ecost_core::pairing::{PairingMode, PairingPolicy};
use ecost_core::stp::LktStp;
use ecost_core::{CacheBudget, EcostContext, ServiceConfig, ServiceReport};
use ecost_sim::arrivals::generate;
use ecost_sim::ServiceFaultSpec;
use ecost_sim::TraceSpec;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Replay geometry: cluster size, arrival count, per-table cache budget,
/// trace peak arrival rate.
struct Scale {
    nodes: usize,
    arrivals: usize,
    budget: usize,
    peak_rate_per_s: f64,
}

impl Scale {
    fn new(quick: bool) -> Scale {
        if quick {
            Scale {
                nodes: 100,
                arrivals: 100_000,
                budget: 4096,
                peak_rate_per_s: 4.0,
            }
        } else {
            Scale {
                nodes: 1000,
                arrivals: 250_000,
                budget: 4096,
                peak_rate_per_s: 40.0,
            }
        }
    }
}

/// The app catalog the trace's Zipf ranks map onto — one application per
/// broad resource class, so the mix exercises every pairing rule.
const CATALOG: [App; 4] = [App::Wc, App::St, App::Gp, App::Fp];

/// One measured arm of the replay.
struct ArmOut {
    name: &'static str,
    run: FaultedRun,
    stats: EngineStats,
    entries: usize,
    wall_s: f64,
    service: Option<ServiceReport>,
}

impl ArmOut {
    /// Deterministic JSON fragment — decisions and counters only, no
    /// wall-clock fields (those go to stdout and the trend row).
    fn json(&self, idle_w: f64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "  \"{}\": {{", self.name);
        let _ = writeln!(s, "    \"makespan_s\": {:.6},", self.run.run.makespan_s);
        let _ = writeln!(s, "    \"energy_dyn_j\": {:.6},", self.run.run.energy_dyn_j);
        let _ = writeln!(s, "    \"edp_wall\": {:.6},", self.run.run.edp_wall(idle_w));
        let r = &self.run.report;
        let _ = writeln!(s, "    \"solo_fallbacks\": {},", r.solo_fallbacks);
        let _ = writeln!(s, "    \"config_fallbacks\": {},", r.config_fallbacks);
        let _ = writeln!(s, "    \"cache\": {{");
        let _ = writeln!(s, "      \"entries\": {},", self.entries);
        let _ = writeln!(s, "      \"hits\": {},", self.stats.hits);
        let _ = writeln!(s, "      \"misses\": {},", self.stats.misses);
        let _ = writeln!(s, "      \"evictions\": {}", self.stats.evictions);
        let _ = writeln!(s, "    }},");
        let _ = writeln!(s, "    \"engine\": {{");
        let _ = writeln!(s, "      \"fallbacks\": {},", self.stats.fallbacks);
        let _ = writeln!(s, "      \"retries\": {},", self.stats.retries);
        let _ = writeln!(
            s,
            "      \"faults_injected\": {}",
            self.stats.faults_injected
        );
        if let Some(svc) = &self.service {
            let _ = writeln!(s, "    }},");
            let _ = writeln!(s, "    \"service\": {{");
            let _ = writeln!(s, "      \"decided\": {},", svc.decided);
            let _ = writeln!(s, "      \"shed\": {},", svc.shed);
            let _ = writeln!(s, "      \"deadline_exceeded\": {},", svc.deadline_exceeded);
            let _ = writeln!(s, "      \"tier_full\": {},", svc.tier_full);
            let _ = writeln!(s, "      \"tier_windowed\": {},", svc.tier_windowed);
            let _ = writeln!(s, "      \"tier_fallback\": {},", svc.tier_fallback);
            let _ = writeln!(s, "      \"breaker_trips\": {},", svc.breaker_trips);
            let _ = writeln!(s, "      \"queue_peak\": {},", svc.queue_peak);
            let _ = writeln!(s, "      \"decision_time_s\": {:.6}", svc.decision_time_s);
        }
        let _ = writeln!(s, "    }}");
        s.push_str("  }");
        s
    }
}

/// Enforce the bounded-memory contract on a finished arm.
fn check_bounds(arm: &ArmOut, budget: usize) -> Result<(), BenchError> {
    // `CacheBudget::entries(n)` caps each of the three tables at n.
    let cap = 3 * budget;
    if arm.entries > cap {
        return Err(BenchError::Invalid(format!(
            "{}: {} resident memo entries exceed the {} budget",
            arm.name, arm.entries, cap
        )));
    }
    if arm.stats.evictions == 0 {
        return Err(BenchError::Invalid(format!(
            "{}: replay never evicted — too small to exercise the bounded cache",
            arm.name
        )));
    }
    Ok(())
}

/// Append the run's decision throughput to the trend store, in the same
/// compact row format `bench_report` writes and `trend_check` reads.
fn append_trend_row(quick: bool, decisions_per_s: f64) -> Result<String, BenchError> {
    let path = std::env::var("ECOST_TREND_OUT").unwrap_or_else(|_| "BENCH_trend.jsonl".into());
    let commit = std::env::var("ECOST_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "uncommitted".into());
    if commit.contains('"') || commit.contains('\\') {
        return Err(BenchError::Invalid(format!(
            "commit id {commit:?} is not JSON-string safe"
        )));
    }
    let row = format!(
        "{{\"schema\":\"ecost-bench-trend/1\",\"commit\":\"{commit}\",\"mode\":\"{}\",\
         \"arms\":\"scale\",\"threads\":{},\"scale_decisions_per_s\":{:.1}}}",
        if quick { "quick" } else { "full" },
        rayon::current_num_threads(),
        decisions_per_s
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{row}")?;
    Ok(path)
}

fn run() -> Result<(), BenchError> {
    let quick = std::env::var("ECOST_QUICK").is_ok_and(|v| v == "1");
    let serviced = std::env::args().skip(1).any(|a| a == "--serviced");
    let scale = Scale::new(quick);

    eprintln!(
        "[scale_out] generating trace: {} arrivals, {} apps, peak {}/s…",
        scale.arrivals,
        CATALOG.len(),
        scale.peak_rate_per_s
    );
    let spec = TraceSpec::alibaba_like(SEED, CATALOG.len(), scale.peak_rate_per_s);
    let trace = generate(&spec, scale.arrivals)?;
    let stream: Vec<OpenArrival> = trace
        .iter()
        .map(|a| OpenArrival {
            app: CATALOG[a.app.min(CATALOG.len() - 1)],
            input_mb: a.size_mb,
            at_s: a.at_s,
        })
        .collect();

    // Offline phase on its own unbounded engine: the database is a fixed
    // artifact; only the streaming engines carry the budget under test.
    eprintln!("[scale_out] building the configuration database…");
    let db_engine = EvalEngine::atom();
    let db = ConfigDatabase::build_subset(
        &db_engine,
        &CATALOG,
        &[ecost_apps::InputSize::Small],
        0.0,
        SEED,
    )?;
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    let pairing = PairingPolicy::default();
    let cx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: PairingMode::DecisionTree,
    };
    let setup = FaultSetup::default();
    let budget = CacheBudget::entries(scale.budget);

    eprintln!(
        "[scale_out] untuned arm: {} arrivals on {} nodes…",
        scale.arrivals, scale.nodes
    );
    let eng_u = EvalEngine::atom().with_cache_budget(budget);
    let t0 = Instant::now();
    let untuned =
        run_untuned_open_stream(&eng_u, scale.nodes, &stream, OpenOptions::default(), &setup)?;
    let untuned = ArmOut {
        name: "untuned",
        run: untuned,
        stats: eng_u.stats(),
        entries: eng_u.cached_entries(),
        wall_s: t0.elapsed().as_secs_f64(),
        service: None,
    };

    eprintln!("[scale_out] ecost arm…");
    let eng_e = EvalEngine::atom().with_cache_budget(budget);
    let t0 = Instant::now();
    let ecost = run_ecost_open_stream(
        &eng_e,
        scale.nodes,
        &stream,
        OpenOptions::default(),
        &cx,
        &setup,
    )?;
    let ecost = ArmOut {
        name: "ecost",
        run: ecost,
        stats: eng_e.stats(),
        entries: eng_e.cached_entries(),
        wall_s: t0.elapsed().as_secs_f64(),
        service: None,
    };

    // Optional third arm (`--serviced`): the same ECoST pipeline behind
    // the tuning-service front (admission, deadlines, breaker) with a
    // healthy fault spec — measures the service ladder's overhead on the
    // same replay.
    let serviced_arm = if serviced {
        eprintln!("[scale_out] serviced arm…");
        let eng_s = EvalEngine::atom().with_cache_budget(budget);
        let t0 = Instant::now();
        let (run, svc) = run_ecost_open_stream_serviced(
            &eng_s,
            scale.nodes,
            &stream,
            OpenOptions::default(),
            &cx,
            &setup,
            ServiceConfig::default(),
            ServiceFaultSpec::healthy(SEED),
        )?;
        Some(ArmOut {
            name: "serviced",
            run,
            stats: eng_s.stats(),
            entries: eng_s.cached_entries(),
            wall_s: t0.elapsed().as_secs_f64(),
            service: Some(svc),
        })
    } else {
        None
    };

    check_bounds(&untuned, scale.budget)?;
    check_bounds(&ecost, scale.budget)?;
    if let Some(arm) = &serviced_arm {
        check_bounds(arm, scale.budget)?;
    }

    let idle_w = eng_e.idle_w();
    let edp_ratio = untuned.run.run.edp_wall(idle_w) / ecost.run.run.edp_wall(idle_w);
    // One decision per arrival: a placement (partner or solo) plus a
    // configuration choice, end to end through profile → classify → tune.
    let decisions_per_s = scale.arrivals as f64 / ecost.wall_s.max(1e-9);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ecost-scale-out/1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"nodes\": {},", scale.nodes);
    let _ = writeln!(out, "  \"arrivals\": {},", scale.arrivals);
    let _ = writeln!(out, "  \"trace_seed\": {SEED},");
    let _ = writeln!(out, "  \"cache_budget_per_table\": {},", scale.budget);
    // Dispatch visibility: the double-run diff catches a build whose
    // engines silently changed lane width or vector backend.
    let _ = writeln!(out, "  \"batch_lanes\": {},", eng_e.batch_lanes());
    let _ = writeln!(
        out,
        "  \"simd_backend\": \"{}\",",
        eng_e.simd_backend().name()
    );
    let _ = writeln!(out, "{},", untuned.json(idle_w));
    let _ = writeln!(out, "{},", ecost.json(idle_w));
    if let Some(arm) = &serviced_arm {
        let _ = writeln!(out, "{},", arm.json(idle_w));
    }
    let _ = writeln!(out, "  \"edp_ratio_untuned_over_ecost\": {edp_ratio:.6}");
    out.push_str("}\n");

    let dir = Ctx::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("scale_out.json");
    std::fs::write(&path, &out)?;
    println!("{out}");
    println!(
        "scale_out: {} arrivals / {} nodes — {:.0} decisions/s (ecost wall {:.2}s, \
         untuned wall {:.2}s), EDP untuned/ecost {:.3}, \
         cache {} entries / {} evictions under budget {}",
        scale.arrivals,
        scale.nodes,
        decisions_per_s,
        ecost.wall_s,
        untuned.wall_s,
        edp_ratio,
        ecost.entries,
        ecost.stats.evictions,
        scale.budget
    );
    if let Some(arm) = &serviced_arm {
        if let Some(svc) = &arm.service {
            println!(
                "scale_out[serviced]: {} decided / {} shed / {} deadline-exceeded, \
                 queue peak {}, wall {:.2}s (plain ecost wall {:.2}s)",
                svc.decided,
                svc.shed,
                svc.deadline_exceeded,
                svc.queue_peak,
                arm.wall_s,
                ecost.wall_s
            );
        }
    }
    eprintln!("[scale_out] wrote {}", path.display());

    let trend_path = append_trend_row(quick, decisions_per_s)?;
    eprintln!("[scale_out] appended trend row to {trend_path}");
    Ok(())
}

fn main() -> ExitCode {
    ecost_bench::run_main("scale_out", run)
}
