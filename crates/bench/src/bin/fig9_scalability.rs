//! Regenerates Fig 9: mapping-policy EDP on 1/2/4/8 nodes for WS1–WS8.
//!
//! Environment knobs:
//! * `ECOST_NODES="1,2"` — restrict the cluster sizes (default `1,2,4,8`);
//! * `ECOST_QUICK=1` — cheaper model training (see the harness).

use ecost_apps::InputSize;
use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_bench::BenchError;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("fig9_scalability", || {
        let sizes =
            parse_nodes(&std::env::var("ECOST_NODES").unwrap_or_else(|_| "1,2,4,8".into()))?;
        let mut ctx = Ctx::new();
        let tables = experiments::fig9_scalability(&mut ctx, &sizes, InputSize::Small);
        for (i, table) in tables.iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("fig9_scalability_{i}"))?;
        }
        Ok(())
    })
}

/// Parse `ECOST_NODES` ("1,2,4,8") into cluster sizes.
fn parse_nodes(raw: &str) -> Result<Vec<usize>, BenchError> {
    raw.split(',')
        .map(|s| {
            s.trim().parse().map_err(|_| {
                BenchError::Invalid(format!("bad node count '{}' in ECOST_NODES", s.trim()))
            })
        })
        .collect()
}
