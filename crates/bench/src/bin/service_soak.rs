//! Seeded scenario-matrix soak of the concurrent tuning service.
//!
//! Drives [`TuningService`] from multiple real worker threads through a
//! matrix of scenarios — service limit profiles × injected fault specs —
//! over one fixed, seeded request schedule, and proves three things:
//!
//! * **Determinism under concurrency** — every cell's outcome
//!   fingerprint (an FNV fold of each request's tier/config/error in
//!   sequence order) and every service counter is byte-identical across
//!   runs; CI runs the bin twice and diffs `results/service.json`.
//! * **Bounded concurrency** — the observed peak of in-flight real
//!   engine evaluations never exceeds the configured limit (the bin
//!   fails otherwise).
//! * **Service ≡ direct** — a zero-fault, no-limit serviced streaming
//!   run ([`run_ecost_open_stream_serviced`] with
//!   [`ServiceConfig::unlimited`]) is bit-identical to the direct
//!   [`run_ecost_open_stream`] driver, and an eligible-window sweep
//!   exercises the [`OpenOptions`] runtime knob.
//!
//! Outputs:
//!
//! * `results/service.json` — fully deterministic document (no
//!   wall-clock fields).
//! * one `BENCH_trend.jsonl` row (schema `ecost-bench-trend/1`, arms
//!   `"service"`) carrying `service_decisions_per_s`, gated by
//!   `trend_check`.
//!
//! `ECOST_QUICK=1` shrinks the matrix for CI smoke runs.

use ecost_apps::App;
use ecost_bench::harness::{Ctx, SEED};
use ecost_bench::BenchError;
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::EvalEngine;
use ecost_core::mapping::{
    run_ecost_open_stream, run_ecost_open_stream_serviced, FaultSetup, FaultedRun, OpenArrival,
    OpenOptions,
};
use ecost_core::pairing::{PairingMode, PairingPolicy};
use ecost_core::stp::LktStp;
use ecost_core::{
    EcostContext, ServiceConfig, ServiceReport, TuningDecision, TuningRequest, TuningService,
};
use ecost_sim::{rng, ServiceFaultSpec};
use rand::Rng as _;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Apps in the soak mix. Small on purpose: input sizes are quantized
/// too, so the engine's memoized sweeps amortize across the matrix and
/// the bin measures the service layer, not fresh simulations.
const APPS: [App; 2] = [App::Wc, App::St];

/// Quantized request input sizes, MB.
const SIZES: [f64; 2] = [256.0, 1024.0];

/// Real worker threads driving each service cell.
const WORKERS: usize = 4;

/// One admission-limit profile of the matrix.
struct LimitsSpec {
    name: &'static str,
    max_inflight: Option<usize>,
    max_queue: Option<usize>,
    deadline_s: f64,
}

const LIMITS: [LimitsSpec; 4] = [
    LimitsSpec {
        name: "unbounded",
        max_inflight: None,
        max_queue: None,
        deadline_s: f64::INFINITY,
    },
    LimitsSpec {
        name: "tight",
        max_inflight: Some(2),
        max_queue: Some(4),
        deadline_s: 30.0,
    },
    LimitsSpec {
        name: "shedding",
        max_inflight: Some(1),
        max_queue: Some(0),
        deadline_s: 10.0,
    },
    // Deep queue + tight budget: queue wait alone can blow the deadline,
    // exercising the DeadlineExceeded path inside the matrix.
    LimitsSpec {
        name: "strict_deadline",
        max_inflight: Some(2),
        max_queue: Some(16),
        deadline_s: 8.0,
    },
];

/// One injected-fault profile of the matrix.
struct FaultsDef {
    name: &'static str,
    transient_rate: f64,
    transient_burst: u32,
    slow_rate: f64,
    slow_factor: f64,
}

const FAULTS: [FaultsDef; 4] = [
    FaultsDef {
        name: "healthy",
        transient_rate: 0.0,
        transient_burst: 0,
        slow_rate: 0.0,
        slow_factor: 1.0,
    },
    // Bursts of 2 sit inside the 2-retry budget: cured, never failing.
    FaultsDef {
        name: "transient_storm",
        transient_rate: 0.5,
        transient_burst: 2,
        slow_rate: 0.0,
        slow_factor: 1.0,
    },
    // Bursts of 8 exhaust the retries: tier failures, breaker trips.
    FaultsDef {
        name: "burst_exhaust",
        transient_rate: 0.3,
        transient_burst: 8,
        slow_rate: 0.0,
        slow_factor: 1.0,
    },
    // Slow evaluations inflate tier costs 8× against the deadline.
    FaultsDef {
        name: "slow_sim",
        transient_rate: 0.0,
        transient_burst: 0,
        slow_rate: 0.4,
        slow_factor: 8.0,
    },
];

/// The fixed, seeded request schedule every cell replays.
fn schedule(n: usize, deadline_s: f64) -> Vec<TuningRequest> {
    let mut r = rng::stream(SEED, "service.soak");
    let mut t = 0.0_f64;
    let mut reqs = Vec::with_capacity(n);
    for seq in 0..n as u64 {
        t += r.gen_range(0.2..3.0);
        let app = APPS[r.gen_range(0..APPS.len())];
        let mb = SIZES[r.gen_range(0..SIZES.len())];
        let req = if r.gen_range(0.0..1.0) < 0.5 {
            let partner = APPS[r.gen_range(0..APPS.len())];
            let pmb = SIZES[r.gen_range(0..SIZES.len())];
            TuningRequest::pair(seq, t, deadline_s, (app, mb), (partner, pmb))
        } else {
            TuningRequest::solo(seq, t, deadline_s, app, mb)
        };
        reqs.push(req);
    }
    reqs
}

/// FNV-1a fold of a cell's per-request outcomes, in sequence order.
fn fingerprint(outcomes: &[String]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for (seq, o) in outcomes.iter().enumerate() {
        for b in seq.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        for b in o.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Stable, fully deterministic encoding of one decision outcome.
fn outcome_str(out: &Result<TuningDecision, ecost_core::ServiceError>) -> String {
    match out {
        Ok(d) => format!(
            "{}|{:?}|deg={}|q={}|s={}|r={}|sc={}",
            d.tier.name(),
            d.config,
            d.degraded,
            d.queued_s.to_bits(),
            d.service_s.to_bits(),
            d.retries,
            d.breaker_short_circuit
        ),
        Err(e) => format!("err:{e:?}"),
    }
}

/// Outcome of one matrix cell.
struct CellOut {
    limits: &'static str,
    faults: &'static str,
    fingerprint: u64,
    report: ServiceReport,
    p50_s: Option<f64>,
    p99_s: Option<f64>,
    inflight_peak: usize,
    wall_s: f64,
}

impl CellOut {
    fn json(&self) -> String {
        let mut s = String::new();
        let r = &self.report;
        let _ = write!(
            s,
            "    {{\"limits\": \"{}\", \"faults\": \"{}\", \"fingerprint\": \"{:016x}\", ",
            self.limits, self.faults, self.fingerprint
        );
        let _ = write!(
            s,
            "\"decided\": {}, \"shed\": {}, \"deadline_exceeded\": {}, ",
            r.decided, r.shed, r.deadline_exceeded
        );
        let _ = write!(
            s,
            "\"tier_full\": {}, \"tier_windowed\": {}, \"tier_fallback\": {}, ",
            r.tier_full, r.tier_windowed, r.tier_fallback
        );
        let _ = write!(
            s,
            "\"retries\": {}, \"tier_failures\": {}, \"breaker_trips\": {}, \
             \"breaker_short_circuits\": {}, \"engine_fallbacks\": {}, \"queue_peak\": {}, ",
            r.retries,
            r.tier_failures,
            r.breaker_trips,
            r.breaker_short_circuits,
            r.engine_fallbacks,
            r.queue_peak
        );
        let _ = write!(
            s,
            "\"decision_time_s\": {:.6}, \"p50_s\": {}, \"p99_s\": {}}}",
            r.decision_time_s,
            json_num(self.p50_s),
            json_num(self.p99_s)
        );
        s
    }
}

/// Finite number or `null` (quantiles can be absent or overflow).
fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6}"),
        _ => "null".into(),
    }
}

/// Drive one (limits × faults) cell from `WORKERS` threads.
fn run_cell(
    engine: &EvalEngine,
    limits: &LimitsSpec,
    faults: &FaultsDef,
    requests: &[TuningRequest],
) -> Result<CellOut, BenchError> {
    let cfg = ServiceConfig {
        max_inflight: limits.max_inflight,
        max_queue: limits.max_queue,
        deadline_s: limits.deadline_s,
        ..ServiceConfig::default()
    };
    let spec = ServiceFaultSpec {
        transient_rate: faults.transient_rate,
        transient_burst: faults.transient_burst,
        slow_rate: faults.slow_rate,
        slow_factor: faults.slow_factor,
        seed: SEED,
    };
    let svc = TuningService::new(engine, cfg, spec)
        .map_err(|e| BenchError::Invalid(format!("service construction: {e}")))?;
    let outcomes = Mutex::new(vec![String::new(); requests.len()]);
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(req) = requests.get(i) else { break };
                let out = svc.decide(req);
                let s = outcome_str(&out);
                if let Ok(mut slots) = outcomes.lock() {
                    slots[i] = s;
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let outcomes = outcomes
        .into_inner()
        .map_err(|_| BenchError::Invalid("soak worker panicked".into()))?;
    let peak = svc.inflight_peak();
    if let Some(limit) = limits.max_inflight {
        if peak > limit {
            return Err(BenchError::Invalid(format!(
                "cell {}x{}: in-flight peak {peak} exceeds the configured limit {limit}",
                limits.name, faults.name
            )));
        }
    }
    Ok(CellOut {
        limits: limits.name,
        faults: faults.name,
        fingerprint: fingerprint(&outcomes),
        report: svc.report(),
        p50_s: svc.latency_quantile(0.5),
        p99_s: svc.latency_quantile(0.99),
        inflight_peak: peak,
        wall_s,
    })
}

/// Open-stream arrivals for the streaming cells, from the same seeded
/// generator family as the service schedule.
fn arrival_stream(n: usize) -> Vec<OpenArrival> {
    let mut r = rng::stream(SEED, "service.soak.stream");
    let mut t = 0.0_f64;
    (0..n)
        .map(|_| {
            t += r.gen_range(5.0..40.0);
            OpenArrival {
                app: APPS[r.gen_range(0..APPS.len())],
                input_mb: SIZES[r.gen_range(0..SIZES.len())],
                at_s: t,
            }
        })
        .collect()
}

/// Append the matrix's decision throughput to the trend store.
fn append_trend_row(quick: bool, decisions_per_s: f64) -> Result<String, BenchError> {
    let path = std::env::var("ECOST_TREND_OUT").unwrap_or_else(|_| "BENCH_trend.jsonl".into());
    let commit = std::env::var("ECOST_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "uncommitted".into());
    if commit.contains('"') || commit.contains('\\') {
        return Err(BenchError::Invalid(format!(
            "commit id {commit:?} is not JSON-string safe"
        )));
    }
    let row = format!(
        "{{\"schema\":\"ecost-bench-trend/1\",\"commit\":\"{commit}\",\"mode\":\"{}\",\
         \"arms\":\"service\",\"threads\":{},\"service_decisions_per_s\":{:.1}}}",
        if quick { "quick" } else { "full" },
        WORKERS,
        decisions_per_s
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{row}")?;
    Ok(path)
}

fn run() -> Result<(), BenchError> {
    let quick = std::env::var("ECOST_QUICK").is_ok_and(|v| v == "1");
    let (n_requests, n_stream, nodes) = if quick { (64, 24, 2) } else { (256, 96, 4) };

    // ------------------------------------------------------------------
    // Phase 1: the (limits × faults) service matrix, multi-threaded.
    // ------------------------------------------------------------------
    eprintln!(
        "[service_soak] matrix: {} limit profiles × {} fault specs × {} requests on {} threads…",
        LIMITS.len(),
        FAULTS.len(),
        n_requests,
        WORKERS
    );
    let engine = EvalEngine::atom();
    let mut cells = Vec::new();
    let mut total_decided = 0u64;
    let mut matrix_wall_s = 0.0;
    for limits in &LIMITS {
        let requests = schedule(n_requests, limits.deadline_s);
        for faults in &FAULTS {
            let cell = run_cell(&engine, limits, faults, &requests)?;
            total_decided += cell.report.decided + cell.report.shed + cell.report.deadline_exceeded;
            matrix_wall_s += cell.wall_s;
            eprintln!(
                "[service_soak]   {}×{}: decided {} shed {} deadline {} trips {} peak {}",
                cell.limits,
                cell.faults,
                cell.report.decided,
                cell.report.shed,
                cell.report.deadline_exceeded,
                cell.report.breaker_trips,
                cell.inflight_peak
            );
            cells.push(cell);
        }
    }
    let decisions_per_s = total_decided as f64 / matrix_wall_s.max(1e-9);

    // ------------------------------------------------------------------
    // Phase 2: serviced streaming vs the direct calendar driver.
    // ------------------------------------------------------------------
    eprintln!("[service_soak] streaming identity: building the configuration database…");
    let db_engine = EvalEngine::atom();
    let db = ConfigDatabase::build_subset(
        &db_engine,
        &APPS,
        &[ecost_apps::InputSize::Small],
        0.0,
        SEED,
    )?;
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    let pairing = PairingPolicy::default();
    let cx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: PairingMode::DecisionTree,
    };
    let setup = FaultSetup::default();
    let stream = arrival_stream(n_stream);

    let eng_direct = EvalEngine::atom();
    let direct = run_ecost_open_stream(
        &eng_direct,
        nodes,
        &stream,
        OpenOptions::default(),
        &cx,
        &setup,
    )?;
    let eng_serviced = EvalEngine::atom();
    let (serviced, svc_report) = run_ecost_open_stream_serviced(
        &eng_serviced,
        nodes,
        &stream,
        OpenOptions::default(),
        &cx,
        &setup,
        ServiceConfig::unlimited(),
        ServiceFaultSpec::healthy(SEED),
    )?;
    let identical = bit_identical(&direct, &serviced);
    if !identical {
        return Err(BenchError::Invalid(format!(
            "unlimited serviced run diverged from the direct driver: \
             direct {:?} vs serviced {:?}",
            direct.run, serviced.run
        )));
    }
    if svc_report.tier_full != svc_report.decided || svc_report.shed != 0 {
        return Err(BenchError::Invalid(format!(
            "unlimited service should grant every decision a full sweep: {svc_report:?}"
        )));
    }

    // ------------------------------------------------------------------
    // Phase 3: the eligible-window runtime knob.
    // ------------------------------------------------------------------
    let mut window_arms = Vec::new();
    for window in [4usize, 64] {
        let eng = EvalEngine::atom();
        let opts = OpenOptions {
            max_head_skips: 2,
            eligible_window: window,
        };
        let out = run_ecost_open_stream(&eng, nodes, &stream, opts, &cx, &setup)?;
        window_arms.push((window, out));
    }

    // ------------------------------------------------------------------
    // Deterministic JSON document.
    // ------------------------------------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ecost-service-soak/1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"requests_per_cell\": {n_requests},");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(out, "{}{}", cell.json(), sep);
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"streaming\": {{");
    let _ = writeln!(out, "    \"nodes\": {nodes},");
    let _ = writeln!(out, "    \"arrivals\": {n_stream},");
    let _ = writeln!(out, "    \"serviced_bit_identical\": {identical},");
    let _ = writeln!(
        out,
        "    \"direct_makespan_s\": {:.6},",
        direct.run.makespan_s
    );
    let _ = writeln!(out, "    \"serviced_decisions\": {},", svc_report.decided);
    let _ = writeln!(out, "    \"eligible_window_sweep\": [");
    for (i, (window, arm)) in window_arms.iter().enumerate() {
        let sep = if i + 1 < window_arms.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"window\": {}, \"makespan_s\": {:.6}, \"energy_dyn_j\": {:.6}}}{}",
            window, arm.run.makespan_s, arm.run.energy_dyn_j, sep
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    let dir = Ctx::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("service.json");
    std::fs::write(&path, &out)?;
    println!("{out}");
    println!(
        "service_soak: {} cells × {} requests on {} threads — {:.0} decisions/s, \
         streaming identity {}",
        cells.len(),
        n_requests,
        WORKERS,
        decisions_per_s,
        if identical { "ok" } else { "FAILED" }
    );
    eprintln!("[service_soak] wrote {}", path.display());

    let trend_path = append_trend_row(quick, decisions_per_s)?;
    eprintln!("[service_soak] appended trend row to {trend_path}");
    Ok(())
}

/// Bit-level equality of two faulted runs (float fields compared by
/// their bit patterns, not `==`).
fn bit_identical(a: &FaultedRun, b: &FaultedRun) -> bool {
    a.run.makespan_s.to_bits() == b.run.makespan_s.to_bits()
        && a.run.energy_dyn_j.to_bits() == b.run.energy_dyn_j.to_bits()
        && a.run.nodes == b.run.nodes
        && a.report == b.report
}

fn main() -> ExitCode {
    ecost_bench::run_main("service_soak", run)
}
