//! Tracked perf-regression harness for the simulator hot path.
//!
//! Times the three kernels the repo's wall-clock cost is made of and
//! writes a machine-readable `BENCH_sim.json` (path override:
//! `ECOST_BENCH_OUT`):
//!
//! 1. **solo sweep** — the full 160-point standalone configuration space
//!    per application, the kernel under profiling and ILAO;
//! 2. **pair sweep** — the co-located pair configuration space, the kernel
//!    under COLAO, the §6.2 database and the training set;
//! 3. **scheduler** — a full cluster run (queueing, placement, per-node
//!    event loops) under the untuned SNM policy.
//!
//! Every kernel is timed in up to three arms of identical shape: the
//! *baseline* arm drives the frozen pre-refactor executor
//! (`ecost_mapreduce::reference`: fresh allocating simulator per point),
//! the *optimized* arm drives the pooled [`EvalEngine`] with scalar rate
//! solves (lane width 1 — the pre-batching committed configuration), and
//! the *batched* arm drives the same engine at the full lane width
//! (lane-interleaved AMVA windows, `MAX_BATCH_LANES` sweep points per
//! solve). All arms are bit-identical in results (enforced by the
//! `refactor_equivalence` proptests and the engine's batched-equivalence
//! tests), so "events" counted on one arm apply to every arm: an event is
//! one per-job execution segment — one span per active job per event-loop
//! step (sweeps count stage completions, the closest deterministic proxy
//! the outcome record keeps).
//!
//! The batched arms run the explicit `f64x4` AMVA kernel (auto-detected
//! backend); alongside them the default run times the same batched
//! sweeps with the kernel pinned scalar, so the SIMD delta is tracked
//! (`*_simd_off` keys in the trend row).
//!
//! On top of the frozen *batched* comparator (the pre-resident per-lane
//! drivers, pinned via [`EvalEngine::set_batch_resident`]), the default
//! run times two more pair arms: *batch_resident* — the engine default,
//! with pooled window checkout, resident outer fixed points and bulk memo
//! traffic — and *warm_start* — the same plus warm-started outer fixed
//! points (results within tolerance, so it gets its own trend key and
//! never gates the bit-identical arms). A separate single-threaded
//! instrumented pass ([`EvalEngine::set_phase_timing`]) reports the
//! measured phase breakdown (solve / outer / submit+reset / memo /
//! event-loop) for the legacy and resident drivers in the `phases`
//! section.
//!
//! Flags: `--baseline` runs the baseline arms only (for A/B against an
//! older build); `--no-batch` skips the batched arms (the pre-batching
//! report shape); `--batch` is the explicit form of the default (all
//! arms); `--no-simd` pins the scalar AMVA kernel on every batched arm
//! (rows get `"simd":"off"`, and the simd-off shadow arms are skipped);
//! `--threads N` sets the worker count for the rayon-sharded arms (the
//! row's `threads` context field reports it); `--lane-sweep`
//! additionally measures the pair kernel at lane widths 1/2/4/6/8/12/16
//! (the DESIGN.md §11 scaling curve); `--quick` (or `ECOST_QUICK=1`)
//! shrinks every dimension for CI smoke runs.
//!
//! Besides `BENCH_sim.json`, every run appends one compact row to the
//! `BENCH_trend.jsonl` trend store (path override: `ECOST_TREND_OUT`;
//! commit hash from `ECOST_COMMIT`, falling back to `GITHUB_SHA`). The
//! `trend_check` binary flags throughput regressions between comparable
//! rows.
//!
//! Walls in the single-digit-millisecond range are at the mercy of
//! thermal throttling and noisy neighbours, so every arm is measured in
//! several rounds *interleaved with its counterparts* and the minimum wall
//! is reported: slow drift hits all arms alike and the min discards it.

use ecost_apps::{App, InputSize, WorkloadScenario};
use ecost_bench::BenchError;
use ecost_core::engine::{EvalEngine, PhaseBreakdown, RetryPolicy};
use ecost_core::features::Testbed;
use ecost_core::mapping::{run_untuned_faulted, FaultSetup};
use ecost_mapreduce::reference::{run_colocated_reference, run_standalone_reference};
use ecost_mapreduce::{JobSpec, PairConfig, TuningConfig, MAX_BATCH_LANES};
use ecost_sim::FaultPlan;
use ecost_telemetry::{Recorder, TraceEvent};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Report schema version. Bump when the `BENCH_sim.json` shape changes
/// (new sections or renamed keys), never for additive arm entries inside
/// an existing section; the pinned unit test makes bumps deliberate.
const SCHEMA: &str = "ecost-bench-sim/3";

/// One timed measurement arm.
#[derive(Debug, Clone, Copy)]
struct Arm {
    wall_s: f64,
    sims: u64,
    events: u64,
}

impl Arm {
    fn sims_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sims as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn events_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\n      \"wall_s\": {:.4},\n      \"sims\": {},\n      \
             \"sims_per_s\": {:.1},\n      \"events\": {},\n      \
             \"events_per_s\": {:.1}\n    }}",
            self.wall_s,
            self.sims,
            self.sims_per_s(),
            self.events,
            self.events_per_s()
        )
    }
}

/// Which arms this invocation measures.
#[derive(Debug, Clone, Copy)]
struct Arms {
    optimized: bool,
    batched: bool,
    lane_sweep: bool,
    /// `false` pins the scalar AMVA kernel on every batched arm.
    simd: bool,
}

impl Arms {
    fn label(&self) -> &'static str {
        if !self.optimized {
            "baseline-only"
        } else if !self.batched {
            "no-batch"
        } else {
            "all"
        }
    }

    /// The trend row's `simd` context value: batched arms either all ran
    /// the vector kernel or all had it pinned scalar.
    fn simd_label(&self) -> &'static str {
        if self.simd {
            "on"
        } else {
            "off"
        }
    }
}

/// Pool accounting accumulated across the optimized and batched arms.
#[derive(Debug, Clone, Copy, Default)]
struct PoolTotals {
    created: u64,
    reused: u64,
}

impl PoolTotals {
    fn absorb(&mut self, eng: &EvalEngine) {
        let s = eng.stats();
        self.created += s.sims_created;
        self.reused += s.sims_reused;
    }
}

fn solo_apps(quick: bool) -> Vec<App> {
    if quick {
        vec![App::Wc]
    } else {
        vec![App::Wc, App::St, App::Gp]
    }
}

/// Keep whichever measurement of the same deterministic work was faster.
fn faster(best: Option<Arm>, cur: Arm) -> Option<Arm> {
    match best {
        Some(b) if b.wall_s <= cur.wall_s => Some(b),
        _ => Some(cur),
    }
}

/// Optimized solo sweep: pooled engine with scalar solves, one fresh memo
/// (every point is a miss, so every point simulates — the kernel, not the
/// cache, is timed).
fn solo_optimized(
    apps: &[App],
    mb: f64,
    configs: &[TuningConfig],
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let eng = EvalEngine::atom().with_batch_lanes(1);
    let t0 = Instant::now();
    let mut events = 0u64;
    for app in apps {
        let outs: Vec<_> = configs
            .par_iter()
            .map(|&cfg| eng.solo_outcome(app.profile(), mb, cfg))
            .collect::<Result<_, _>>()?;
        events += outs.iter().map(|o| o.timeline.len() as u64).sum::<u64>();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events,
    })
}

/// Batched solo sweep: the engine's lane-interleaved sweep driver at full
/// lane width, pinned to the pre-resident per-lane drivers so the
/// `solo_batched` trend key keeps measuring the frozen comparator. Same
/// 160-point space per app as the other arms; events are not observable
/// through sweep metrics, the caller patches them in from the baseline
/// arm (bit-identical timelines).
fn solo_batched(
    apps: &[App],
    mb: f64,
    simd: bool,
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let mut eng = EvalEngine::atom().with_simd(simd);
    eng.set_batch_resident(false);
    let t0 = Instant::now();
    for app in apps {
        eng.sweep_solo(app.profile(), mb)?;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events: 0,
    })
}

/// Baseline solo sweep: the frozen pre-refactor executor, one fresh
/// allocating simulator per point.
fn solo_baseline(apps: &[App], mb: f64, configs: &[TuningConfig]) -> Result<Arm, BenchError> {
    let tb = Testbed::atom();
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut sims = 0u64;
    for app in apps {
        let outs: Vec<_> = configs
            .par_iter()
            .map(|&cfg| {
                run_standalone_reference(
                    &tb.node,
                    &tb.fw,
                    JobSpec::from_profile(app.profile().clone(), mb, cfg),
                )
            })
            .collect::<Result<_, _>>()?;
        sims += outs.len() as u64;
        events += outs.iter().map(|o| o.timeline.len() as u64).sum::<u64>();
    }
    Ok(Arm {
        wall_s: t0.elapsed().as_secs_f64(),
        sims,
        events,
    })
}

/// Optimized pair sweep over `pcs` with scalar solves. Events are not
/// observable through the engine's pair metrics; the caller patches them
/// in from the baseline arm (bit-identical timelines).
fn pair_optimized(
    a: App,
    b: App,
    mb: f64,
    pcs: &[PairConfig],
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let eng = EvalEngine::atom().with_batch_lanes(1);
    let t0 = Instant::now();
    let _: Vec<_> = pcs
        .par_iter()
        .map(|&pc| eng.pair_metrics(a.profile(), mb, b.profile(), mb, pc))
        .collect::<Result<_, _>>()?;
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events: 0,
    })
}

/// Which window-execution path a batched pair arm drives.
#[derive(Debug, Clone, Copy)]
enum PairArm {
    /// The frozen pre-resident per-lane drivers — what the `pair_batched`
    /// trend key has always measured.
    Legacy,
    /// Batch-resident window execution (the engine default).
    Resident,
    /// Batch-resident plus warm-started outer fixed points (results
    /// within tolerance, never compared against the bit-identical arms).
    WarmStart,
}

/// Batched pair sweep at lane width `lanes`: the engine's full-space
/// sweep driver (the batched windows only exist under the sweep, so this
/// arm always covers the whole space — in quick mode that is more points
/// than the stride-sampled scalar arms, which is why arms compare on
/// `sims_per_s`, not wall). `arm` selects the window-execution path.
fn pair_batched(
    a: App,
    b: App,
    mb: f64,
    lanes: usize,
    simd: bool,
    arm: PairArm,
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let mut eng = EvalEngine::atom().with_batch_lanes(lanes).with_simd(simd);
    eng.set_batch_resident(!matches!(arm, PairArm::Legacy));
    eng.set_warm_start(matches!(arm, PairArm::WarmStart));
    let t0 = Instant::now();
    eng.pair_sweep(a.profile(), mb, b.profile(), mb)?;
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events: 0,
    })
}

/// Baseline pair sweep: fresh reference simulator per point.
fn pair_baseline(a: App, b: App, mb: f64, pcs: &[PairConfig]) -> Result<Arm, BenchError> {
    let tb = Testbed::atom();
    let t0 = Instant::now();
    let runs: Vec<(Vec<ecost_mapreduce::JobOutcome>, f64)> = pcs
        .par_iter()
        .map(|&pc| {
            run_colocated_reference(
                &tb.node,
                &tb.fw,
                vec![
                    JobSpec::from_profile(a.profile().clone(), mb, pc.a),
                    JobSpec::from_profile(b.profile().clone(), mb, pc.b),
                ],
            )
        })
        .collect::<Result<_, _>>()?;
    let wall_s = t0.elapsed().as_secs_f64();
    let events = runs
        .iter()
        .flat_map(|(outs, _)| outs.iter())
        .map(|o| o.timeline.len() as u64)
        .sum();
    Ok(Arm {
        wall_s,
        sims: pcs.len() as u64,
        events,
    })
}

/// Scheduler workload geometry: (node count, workload).
fn scheduler_load(quick: bool) -> (usize, ecost_apps::Workload) {
    let nodes = if quick { 2 } else { 4 };
    let size = if quick {
        InputSize::Small
    } else {
        InputSize::Medium
    };
    (nodes, WorkloadScenario::Ws1.workload(size))
}

fn scheduler_setup() -> FaultSetup {
    FaultSetup {
        plan: FaultPlan::none(),
        retry: RetryPolicy::none(),
    }
}

/// Event count of the scheduler run: one span per per-job execution
/// segment, counted on a recording pass. The run is deterministic and
/// bit-identical across arms, so the count transfers to the separately
/// timed no-op-recorder passes.
fn scheduler_events(quick: bool) -> Result<u64, BenchError> {
    let (nodes, wl) = scheduler_load(quick);
    let counting = EvalEngine::with_recorder(Testbed::atom(), Recorder::recording());
    run_untuned_faulted(&counting, nodes, &wl, None, &scheduler_setup())?;
    Ok(counting
        .recorder()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Span { .. }))
        .count() as u64)
}

/// Scheduler arm selector: which executor the engine routes runs through.
#[derive(Debug, Clone, Copy)]
enum SchedArm {
    Baseline,
    Optimized,
    Batched,
}

/// One timed pass of the streaming scheduler (wait queue, paired
/// placement, per-node event loops) under the untuned policy, fault-free.
fn scheduler_timed(
    quick: bool,
    arm: SchedArm,
    simd: bool,
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let (nodes, wl) = scheduler_load(quick);
    let mut eng = EvalEngine::atom();
    match arm {
        SchedArm::Baseline => eng.set_reference_executor(true),
        SchedArm::Optimized => eng.set_batch_lanes(1),
        SchedArm::Batched => eng.set_simd(simd),
    }
    let t0 = Instant::now();
    run_untuned_faulted(&eng, nodes, &wl, None, &scheduler_setup())?;
    let wall_s = t0.elapsed().as_secs_f64();
    if !matches!(arm, SchedArm::Baseline) {
        pool.absorb(&eng);
    }
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events: 0,
    })
}

/// One instrumented pass over a fresh engine — the full solo sweep plus
/// the full pair sweep, every point a miss — with phase timing on.
/// Returns the pass's wall nanoseconds and the drained breakdown. The
/// caller pins `RAYON_NUM_THREADS=1` so the summed per-thread buckets are
/// directly comparable to the wall.
fn phase_pass(simd: bool, resident: bool, mb: f64) -> Result<(u64, PhaseBreakdown), BenchError> {
    let mut eng = EvalEngine::atom().with_simd(simd);
    eng.set_batch_resident(resident);
    eng.set_phase_timing(true);
    let t0 = Instant::now();
    eng.sweep_solo(App::Gp.profile(), mb)?;
    eng.pair_sweep(App::Gp.profile(), mb, App::St.profile(), mb)?;
    let wall_ns = t0.elapsed().as_nanos() as u64;
    Ok((wall_ns, eng.take_phase_breakdown()))
}

/// Fraction of a pass's wall spent in simulator checkout/submit/reset and
/// memo traffic — the overhead the batch-resident path fuses into the
/// window.
fn submit_reset_memo_share(wall_ns: u64, p: &PhaseBreakdown) -> f64 {
    if wall_ns == 0 {
        return 0.0;
    }
    (p.submit_reset_ns + p.memo_ns) as f64 / wall_ns as f64
}

/// JSON object for one instrumented pass.
fn phase_json(wall_ns: u64, p: &PhaseBreakdown) -> String {
    format!(
        "{{\n      \"wall_s\": {:.4},\n      \"solve_ns\": {},\n      \
         \"outer_ns\": {},\n      \"submit_reset_ns\": {},\n      \
         \"memo_ns\": {},\n      \"event_loop_ns\": {},\n      \
         \"submit_reset_memo_share\": {:.4}\n    }}",
        wall_ns as f64 * 1e-9,
        p.solve_ns,
        p.outer_ns,
        p.submit_reset_ns,
        p.memo_ns,
        p.event_loop_ns,
        submit_reset_memo_share(wall_ns, p)
    )
}

/// Measure the phase breakdown of the legacy and batch-resident drivers
/// on one thread (restoring the caller's `RAYON_NUM_THREADS`), and emit
/// the `phases` section. The legacy drivers only instrument the
/// engine-side buckets (submit/reset and memo) — their kernel keeps no
/// timestamps — so shares are computed against the pass wall, which both
/// drivers report the same way.
fn measure_phases(out: &mut String, simd: bool, mb: f64) -> Result<(), BenchError> {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let legacy = phase_pass(simd, false, mb);
    let resident = phase_pass(simd, true, mb);
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let (legacy_wall, legacy_p) = legacy?;
    let (res_wall, res_p) = resident?;
    let legacy_share = submit_reset_memo_share(legacy_wall, &legacy_p);
    let res_share = submit_reset_memo_share(res_wall, &res_p);
    let reduction = if res_share > 0.0 {
        legacy_share / res_share
    } else {
        0.0
    };
    let _ = writeln!(out, "  \"phases\": {{");
    let _ = writeln!(
        out,
        "    \"legacy\": {},",
        phase_json(legacy_wall, &legacy_p)
    );
    let _ = writeln!(
        out,
        "    \"batch_resident\": {},",
        phase_json(res_wall, &res_p)
    );
    let _ = writeln!(
        out,
        "    \"submit_reset_memo_share_reduction\": {reduction:.2}"
    );
    let _ = writeln!(out, "  }},");
    Ok(())
}

/// Emit one kernel section: scalar extras, then every present arm, then
/// every present ratio — comma placement handled by joining.
fn section(
    out: &mut String,
    name: &str,
    extra: &[(&str, String)],
    arms: &[(&str, Option<Arm>)],
    ratios: &[(&str, Option<f64>)],
) {
    let mut items: Vec<String> = Vec::new();
    for (k, v) in extra {
        items.push(format!("    \"{k}\": {v}"));
    }
    for (k, arm) in arms {
        if let Some(a) = arm {
            items.push(format!("    \"{k}\": {}", a.json()));
        }
    }
    for (k, r) in ratios {
        if let Some(r) = r {
            items.push(format!("    \"{k}\": {r:.2}"));
        }
    }
    let _ = writeln!(out, "  \"{name}\": {{");
    let _ = writeln!(out, "{}", items.join(",\n"));
    let _ = writeln!(out, "  }},");
}

/// Wall-clock speedup of `opt` over `base` — only meaningful when both
/// arms did identical work (same point set).
fn wall_speedup(opt: Option<Arm>, base: Option<Arm>) -> Option<f64> {
    match (opt, base) {
        (Some(o), Some(b)) if o.wall_s > 0.0 => Some(b.wall_s / o.wall_s),
        _ => None,
    }
}

/// Throughput ratio of `num` over `den` — rate-based, so it stays
/// meaningful when the arms covered different point counts.
fn rate_ratio(num: Option<Arm>, den: Option<Arm>) -> Option<f64> {
    match (num, den) {
        (Some(n), Some(d)) if d.sims_per_s() > 0.0 => Some(n.sims_per_s() / d.sims_per_s()),
        _ => None,
    }
}

/// The trend row's commit context: `(commit id, dirty worktree)`.
///
/// Precedence: `ECOST_COMMIT`, then `GITHUB_SHA` (both trusted as clean —
/// CI benches a pristine checkout), then `git rev-parse --short HEAD`
/// with the dirty flag from `git status --porcelain`, so a local run's
/// row names the real commit it measured instead of `"uncommitted"`.
/// Outside a git worktree (or with no git binary) the old
/// `("uncommitted", dirty)` fallback survives.
fn commit_context() -> (String, bool) {
    if let Ok(c) = std::env::var("ECOST_COMMIT").or_else(|_| std::env::var("GITHUB_SHA")) {
        return (c, false);
    }
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let head = git(&["rev-parse", "--short", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    let Some(head) = head else {
        return ("uncommitted".into(), true);
    };
    // A failed status query reports dirty: over-claiming dirt is safer
    // than stamping a mutated tree as the commit's performance.
    let dirty = git(&["status", "--porcelain"]).is_none_or(|s| !s.trim().is_empty());
    (head, dirty)
}

/// Append the run's headline throughputs as one compact row to the trend
/// store (`ECOST_TREND_OUT`, default `BENCH_trend.jsonl`). Schema-
/// versioned; the commit context comes from [`commit_context`].
/// `trend_check` consumes these rows.
fn append_trend_row(
    arms: Arms,
    quick: bool,
    metrics: &[(&str, Option<Arm>)],
) -> Result<String, BenchError> {
    let path = std::env::var("ECOST_TREND_OUT").unwrap_or_else(|_| "BENCH_trend.jsonl".into());
    let (commit, dirty) = commit_context();
    if commit.contains('"') || commit.contains('\\') {
        return Err(BenchError::Invalid(format!(
            "commit id {commit:?} is not JSON-string safe"
        )));
    }
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"schema\":\"ecost-bench-trend/1\",\"commit\":\"{commit}\",\"dirty\":{dirty},\
         \"mode\":\"{}\",\"arms\":\"{}\",\"threads\":{},\"simd\":\"{}\"",
        if quick { "quick" } else { "full" },
        arms.label(),
        rayon::current_num_threads(),
        arms.simd_label()
    );
    for (key, arm) in metrics {
        if let Some(a) = arm {
            let _ = write!(row, ",\"{key}_sims_per_s\":{:.1}", a.sims_per_s());
        }
    }
    row.push('}');
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{row}")?;
    Ok(path)
}

#[allow(clippy::too_many_lines)]
fn run(arms: Arms) -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().collect();
    let quick =
        std::env::var("ECOST_QUICK").is_ok_and(|v| v == "1") || args.iter().any(|a| a == "--quick");
    // The vendored rayon shim sizes its scope per call from this
    // variable, so setting it up front covers every parallel arm.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| BenchError::Invalid("--threads needs a positive integer".into()))?;
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
    let tb = Testbed::atom();
    let mb = InputSize::Small.per_node_mb();
    let rounds = if quick { 3 } else { 7 };
    let mut pool = PoolTotals::default();

    let solo_cfgs: Vec<TuningConfig> = TuningConfig::space(tb.node.cores).collect();
    let apps = solo_apps(quick);
    eprintln!(
        "[bench_report] solo sweep: {} apps x {} configs, {} rounds ({}, {} arms)…",
        apps.len(),
        solo_cfgs.len(),
        rounds,
        if quick { "quick" } else { "full" },
        arms.label()
    );
    let mut solo_base: Option<Arm> = None;
    let mut solo_opt: Option<Arm> = None;
    let mut solo_bat: Option<Arm> = None;
    let mut solo_off: Option<Arm> = None;
    for _ in 0..rounds {
        solo_base = faster(solo_base, solo_baseline(&apps, mb, &solo_cfgs)?);
        if arms.optimized {
            solo_opt = faster(solo_opt, solo_optimized(&apps, mb, &solo_cfgs, &mut pool)?);
        }
        if arms.batched {
            solo_bat = faster(solo_bat, solo_batched(&apps, mb, arms.simd, &mut pool)?);
        }
        // Shadow arm: same batched sweep with the kernel pinned scalar,
        // so the SIMD delta itself is tracked by trend_check.
        if arms.batched && arms.simd {
            solo_off = faster(solo_off, solo_batched(&apps, mb, false, &mut pool)?);
        }
    }
    let solo_base = solo_base.ok_or(BenchError::Invalid("no solo rounds ran".into()))?;
    // Bit-identical arms: the baseline's event count transfers (sweep
    // metrics keep no timelines to count on the batched arm).
    let solo_bat = solo_bat.map(|mut arm| {
        arm.events = solo_base.events;
        arm
    });
    let solo_off = solo_off.map(|mut arm| {
        arm.events = solo_base.events;
        arm
    });

    let all_pcs = PairConfig::space(tb.node.cores);
    let full_space = all_pcs.len();
    let stride = if quick { 32 } else { 1 };
    let pcs: Vec<PairConfig> = all_pcs.into_iter().step_by(stride).collect();
    eprintln!(
        "[bench_report] pair sweep: {} configs ({} batched), {rounds} rounds…",
        pcs.len(),
        full_space
    );
    let mut pair_base: Option<Arm> = None;
    let mut pair_opt: Option<Arm> = None;
    let mut pair_bat: Option<Arm> = None;
    let mut pair_off: Option<Arm> = None;
    let mut pair_res: Option<Arm> = None;
    let mut pair_warm: Option<Arm> = None;
    for _ in 0..rounds {
        pair_base = faster(pair_base, pair_baseline(App::Gp, App::St, mb, &pcs)?);
        if arms.optimized {
            pair_opt = faster(
                pair_opt,
                pair_optimized(App::Gp, App::St, mb, &pcs, &mut pool)?,
            );
        }
        if arms.batched {
            pair_bat = faster(
                pair_bat,
                pair_batched(
                    App::Gp,
                    App::St,
                    mb,
                    MAX_BATCH_LANES,
                    arms.simd,
                    PairArm::Legacy,
                    &mut pool,
                )?,
            );
            // Interleaved with the frozen comparator above, so the
            // resident-vs-batched ratio comes from the same run.
            pair_res = faster(
                pair_res,
                pair_batched(
                    App::Gp,
                    App::St,
                    mb,
                    MAX_BATCH_LANES,
                    arms.simd,
                    PairArm::Resident,
                    &mut pool,
                )?,
            );
            pair_warm = faster(
                pair_warm,
                pair_batched(
                    App::Gp,
                    App::St,
                    mb,
                    MAX_BATCH_LANES,
                    arms.simd,
                    PairArm::WarmStart,
                    &mut pool,
                )?,
            );
        }
        if arms.batched && arms.simd {
            pair_off = faster(
                pair_off,
                pair_batched(
                    App::Gp,
                    App::St,
                    mb,
                    MAX_BATCH_LANES,
                    false,
                    PairArm::Legacy,
                    &mut pool,
                )?,
            );
        }
    }
    let pair_base = pair_base.ok_or(BenchError::Invalid("no pair rounds ran".into()))?;
    // Bit-identical arms: the baseline's event count is the event count
    // (the engine's pair memo keeps metrics, not timelines). The batched
    // arm's count transfers only when it covered the same point set.
    let pair_opt = pair_opt.map(|mut arm| {
        arm.events = pair_base.events;
        arm
    });
    let pair_bat = pair_bat.map(|mut arm| {
        if arm.sims == pair_base.sims {
            arm.events = pair_base.events;
        }
        arm
    });
    let pair_off = pair_off.map(|mut arm| {
        if arm.sims == pair_base.sims {
            arm.events = pair_base.events;
        }
        arm
    });
    let pair_res = pair_res.map(|mut arm| {
        if arm.sims == pair_base.sims {
            arm.events = pair_base.events;
        }
        arm
    });
    // The warm-start arm's results are within-tolerance, not
    // bit-identical, so the baseline's event count does not transfer.

    // Lane-width scaling curve for the pair kernel (DESIGN.md §11).
    let mut lane_curve: Vec<(usize, Option<Arm>)> = Vec::new();
    if arms.lane_sweep {
        let widths = [1usize, 2, 4, 6, 8, 12, 16];
        eprintln!("[bench_report] lane sweep: widths {widths:?}, {rounds} rounds…");
        lane_curve = widths.iter().map(|&w| (w, None)).collect();
        for _ in 0..rounds {
            for (w, best) in &mut lane_curve {
                *best = faster(
                    *best,
                    pair_batched(
                        App::Gp,
                        App::St,
                        mb,
                        *w,
                        arms.simd,
                        PairArm::Resident,
                        &mut pool,
                    )?,
                );
            }
        }
    }

    eprintln!("[bench_report] scheduler run, {rounds} rounds…");
    let (nodes, wl) = scheduler_load(quick);
    let jobs = wl.jobs.len();
    let sched_events = scheduler_events(quick)?;
    let mut sched_base: Option<Arm> = None;
    let mut sched_opt: Option<Arm> = None;
    let mut sched_bat: Option<Arm> = None;
    for _ in 0..rounds {
        sched_base = faster(
            sched_base,
            scheduler_timed(quick, SchedArm::Baseline, arms.simd, &mut pool)?,
        );
        if arms.optimized {
            sched_opt = faster(
                sched_opt,
                scheduler_timed(quick, SchedArm::Optimized, arms.simd, &mut pool)?,
            );
        }
        if arms.batched {
            sched_bat = faster(
                sched_bat,
                scheduler_timed(quick, SchedArm::Batched, arms.simd, &mut pool)?,
            );
        }
    }
    let sched_base = sched_base.ok_or(BenchError::Invalid("no scheduler rounds ran".into()))?;
    let patch = |arm: Option<Arm>| {
        arm.map(|mut a| {
            a.events = sched_events;
            a
        })
    };
    let sched_base = {
        let mut a = sched_base;
        a.events = sched_events;
        a
    };
    let (sched_opt, sched_bat) = (patch(sched_opt), patch(sched_bat));

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"arms\": \"{}\",", arms.label());
    let _ = writeln!(out, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(out, "  \"batch_lanes\": {MAX_BATCH_LANES},");
    let _ = writeln!(out, "  \"simd\": \"{}\",", arms.simd_label());
    let _ = writeln!(
        out,
        "  \"simd_backend\": \"{}\",",
        if arms.simd {
            ecost_sim::SimdBackend::detect().name()
        } else {
            "scalar"
        }
    );
    section(
        &mut out,
        "solo_sweep",
        &[
            ("apps", apps.len().to_string()),
            ("configs", solo_cfgs.len().to_string()),
        ],
        &[
            ("optimized", solo_opt),
            ("batched", solo_bat),
            ("batched_no_simd", solo_off),
            ("baseline", Some(solo_base)),
        ],
        &[
            ("speedup", wall_speedup(solo_opt, Some(solo_base))),
            ("speedup_batched", rate_ratio(solo_bat, solo_opt)),
            ("speedup_simd", rate_ratio(solo_bat, solo_off)),
        ],
    );
    section(
        &mut out,
        "pair_sweep",
        &[("configs", pcs.len().to_string())],
        &[
            ("optimized", pair_opt),
            ("batched", pair_bat),
            ("batch_resident", pair_res),
            ("warm_start", pair_warm),
            ("batched_no_simd", pair_off),
            ("baseline", Some(pair_base)),
        ],
        &[
            ("speedup", wall_speedup(pair_opt, Some(pair_base))),
            ("speedup_batched", rate_ratio(pair_bat, pair_opt)),
            ("speedup_resident", rate_ratio(pair_res, pair_bat)),
            ("speedup_warm", rate_ratio(pair_warm, pair_res)),
            ("speedup_simd", rate_ratio(pair_bat, pair_off)),
        ],
    );
    if !lane_curve.is_empty() {
        let _ = writeln!(out, "  \"lane_sweep\": [");
        let rows: Vec<String> = lane_curve
            .iter()
            .filter_map(|&(w, arm)| {
                arm.map(|a| {
                    format!(
                        "    {{\"lanes\": {w}, \"sims\": {}, \"wall_s\": {:.4}, \
                         \"sims_per_s\": {:.1}}}",
                        a.sims,
                        a.wall_s,
                        a.sims_per_s()
                    )
                })
            })
            .collect();
        let _ = writeln!(out, "{}", rows.join(",\n"));
        let _ = writeln!(out, "  ],");
    }
    section(
        &mut out,
        "scheduler",
        &[("nodes", nodes.to_string()), ("jobs", jobs.to_string())],
        &[
            ("optimized", sched_opt),
            ("batched", sched_bat),
            ("baseline", Some(sched_base)),
        ],
        &[
            ("speedup", wall_speedup(sched_opt, Some(sched_base))),
            ("speedup_batched", rate_ratio(sched_bat, sched_opt)),
        ],
    );
    if arms.batched {
        eprintln!("[bench_report] phase breakdown: legacy vs batch-resident, 1 thread…");
        measure_phases(&mut out, arms.simd, mb)?;
    }
    let _ = writeln!(out, "  \"pool\": {{");
    let _ = writeln!(out, "    \"sims_created\": {},", pool.created);
    let _ = writeln!(out, "    \"sims_reused\": {},", pool.reused);
    let total = pool.created + pool.reused;
    let frac = if total > 0 {
        pool.reused as f64 / total as f64
    } else {
        0.0
    };
    let _ = writeln!(out, "    \"reuse_frac\": {frac:.4}");
    out.push_str("  }\n}\n");

    let path = std::env::var("ECOST_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&path, &out)?;
    println!("{out}");
    eprintln!("[bench_report] wrote {path}");

    let trend_path = append_trend_row(
        arms,
        quick,
        &[
            ("solo_baseline", Some(solo_base)),
            ("solo_optimized", solo_opt),
            ("solo_batched", solo_bat),
            ("solo_simd_off", solo_off),
            ("pair_baseline", Some(pair_base)),
            ("pair_optimized", pair_opt),
            ("pair_batched", pair_bat),
            ("pair_batch_resident", pair_res),
            ("pair_warm_start", pair_warm),
            ("pair_simd_off", pair_off),
            ("sched_baseline", Some(sched_base)),
            ("sched_optimized", sched_opt),
            ("sched_batched", sched_bat),
        ],
    )?;
    eprintln!("[bench_report] appended trend row to {trend_path}");
    Ok(())
}

fn main() -> ExitCode {
    let baseline_only = std::env::args().any(|a| a == "--baseline");
    let no_batch = std::env::args().any(|a| a == "--no-batch");
    let lane_sweep = std::env::args().any(|a| a == "--lane-sweep");
    let no_simd = std::env::args().any(|a| a == "--no-simd");
    let arms = Arms {
        optimized: !baseline_only,
        batched: !baseline_only && !no_batch,
        lane_sweep: lane_sweep && !baseline_only && !no_batch,
        simd: !no_simd,
    };
    ecost_bench::run_main("bench_report", || run(arms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_sim_schema_is_pinned() {
        // Consumers (CI smoke, DESIGN.md §11, external dashboards) key on
        // this exact string; a shape change must bump it here on purpose,
        // in the same commit that documents the new shape.
        assert_eq!(SCHEMA, "ecost-bench-sim/3");
    }

    #[test]
    fn commit_context_is_json_safe() {
        // Whatever source wins (env override, git, fallback), the id must
        // embed into the hand-rolled JSON row without escaping.
        let (commit, _dirty) = commit_context();
        assert!(!commit.is_empty());
        assert!(!commit.contains('"') && !commit.contains('\\'), "{commit}");
    }

    #[test]
    fn submit_reset_memo_share_is_a_fraction_of_wall() {
        let p = PhaseBreakdown {
            solve_ns: 600,
            outer_ns: 100,
            submit_reset_ns: 200,
            memo_ns: 100,
            event_loop_ns: 0,
        };
        assert!((submit_reset_memo_share(1000, &p) - 0.3).abs() < 1e-12);
        assert_eq!(submit_reset_memo_share(0, &p), 0.0);
    }
}
