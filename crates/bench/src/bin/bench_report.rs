//! Tracked perf-regression harness for the simulator hot path.
//!
//! Times the three kernels the repo's wall-clock cost is made of and
//! writes a machine-readable `BENCH_sim.json` (path override:
//! `ECOST_BENCH_OUT`):
//!
//! 1. **solo sweep** — the full 160-point standalone configuration space
//!    per application, the kernel under profiling and ILAO;
//! 2. **pair sweep** — the co-located pair configuration space, the kernel
//!    under COLAO, the §6.2 database and the training set;
//! 3. **scheduler** — a full cluster run (queueing, placement, per-node
//!    event loops) under the untuned SNM policy.
//!
//! Sweeps are timed twice: the *optimized* arm drives the pooled
//! [`EvalEngine`] (reset-and-reuse simulators, zero-allocation event
//! loop), the *baseline* arm drives the frozen pre-refactor executor
//! (`ecost_mapreduce::reference`: fresh allocating simulator per point).
//! Both arms are bit-identical in results (enforced by the
//! `refactor_equivalence` proptest), so "events" counted on one arm apply
//! to both: an event is one per-job execution segment — one span per
//! active job per event-loop step (sweeps count stage completions, the
//! closest deterministic proxy the outcome record keeps).
//!
//! `--baseline` runs the baseline arms only (for A/B against an older
//! build); `ECOST_QUICK=1` shrinks every dimension for CI smoke runs.
//!
//! Walls in the single-digit-millisecond range are at the mercy of
//! thermal throttling and noisy neighbours, so every arm is measured in
//! several rounds *interleaved with its counterpart* and the minimum wall
//! is reported: slow drift hits both arms alike and the min discards it.

use ecost_apps::{App, InputSize, WorkloadScenario};
use ecost_bench::BenchError;
use ecost_core::engine::{EvalEngine, RetryPolicy};
use ecost_core::features::Testbed;
use ecost_core::mapping::{run_untuned_faulted, FaultSetup};
use ecost_mapreduce::reference::{run_colocated_reference, run_standalone_reference};
use ecost_mapreduce::{JobSpec, PairConfig, TuningConfig};
use ecost_sim::FaultPlan;
use ecost_telemetry::{Recorder, TraceEvent};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One timed measurement arm.
#[derive(Debug, Clone, Copy)]
struct Arm {
    wall_s: f64,
    sims: u64,
    events: u64,
}

impl Arm {
    fn sims_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sims as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn events_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn json(&self, out: &mut String, indent: &str) {
        let _ = writeln!(out, "{indent}\"wall_s\": {:.4},", self.wall_s);
        let _ = writeln!(out, "{indent}\"sims\": {},", self.sims);
        let _ = writeln!(out, "{indent}\"sims_per_s\": {:.1},", self.sims_per_s());
        let _ = writeln!(out, "{indent}\"events\": {},", self.events);
        let _ = writeln!(out, "{indent}\"events_per_s\": {:.1}", self.events_per_s());
    }
}

/// Pool accounting accumulated across the optimized arms.
#[derive(Debug, Clone, Copy, Default)]
struct PoolTotals {
    created: u64,
    reused: u64,
}

impl PoolTotals {
    fn absorb(&mut self, eng: &EvalEngine) {
        let s = eng.stats();
        self.created += s.sims_created;
        self.reused += s.sims_reused;
    }
}

fn solo_apps(quick: bool) -> Vec<App> {
    if quick {
        vec![App::Wc]
    } else {
        vec![App::Wc, App::St, App::Gp]
    }
}

/// Keep whichever measurement of the same deterministic work was faster.
fn faster(best: Option<Arm>, cur: Arm) -> Option<Arm> {
    match best {
        Some(b) if b.wall_s <= cur.wall_s => Some(b),
        _ => Some(cur),
    }
}

/// Optimized solo sweep: pooled engine, one fresh memo (every point is a
/// miss, so every point simulates — the kernel, not the cache, is timed).
fn solo_optimized(
    apps: &[App],
    mb: f64,
    configs: &[TuningConfig],
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let eng = EvalEngine::atom();
    let t0 = Instant::now();
    let mut events = 0u64;
    for app in apps {
        let outs: Vec<_> = configs
            .par_iter()
            .map(|&cfg| eng.solo_outcome(app.profile(), mb, cfg))
            .collect::<Result<_, _>>()?;
        events += outs.iter().map(|o| o.timeline.len() as u64).sum::<u64>();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events,
    })
}

/// Baseline solo sweep: the frozen pre-refactor executor, one fresh
/// allocating simulator per point.
fn solo_baseline(apps: &[App], mb: f64, configs: &[TuningConfig]) -> Result<Arm, BenchError> {
    let tb = Testbed::atom();
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut sims = 0u64;
    for app in apps {
        let outs: Vec<_> = configs
            .par_iter()
            .map(|&cfg| {
                run_standalone_reference(
                    &tb.node,
                    &tb.fw,
                    JobSpec::from_profile(app.profile().clone(), mb, cfg),
                )
            })
            .collect::<Result<_, _>>()?;
        sims += outs.len() as u64;
        events += outs.iter().map(|o| o.timeline.len() as u64).sum::<u64>();
    }
    Ok(Arm {
        wall_s: t0.elapsed().as_secs_f64(),
        sims,
        events,
    })
}

/// Optimized pair sweep over `pcs`. Events are not observable through the
/// engine's pair metrics; the caller patches them in from the baseline arm
/// (bit-identical timelines).
fn pair_optimized(
    a: App,
    b: App,
    mb: f64,
    pcs: &[PairConfig],
    pool: &mut PoolTotals,
) -> Result<Arm, BenchError> {
    let eng = EvalEngine::atom();
    let t0 = Instant::now();
    let _: Vec<_> = pcs
        .par_iter()
        .map(|&pc| eng.pair_metrics(a.profile(), mb, b.profile(), mb, pc))
        .collect::<Result<_, _>>()?;
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events: 0,
    })
}

/// Baseline pair sweep: fresh reference simulator per point.
fn pair_baseline(a: App, b: App, mb: f64, pcs: &[PairConfig]) -> Result<Arm, BenchError> {
    let tb = Testbed::atom();
    let t0 = Instant::now();
    let runs: Vec<(Vec<ecost_mapreduce::JobOutcome>, f64)> = pcs
        .par_iter()
        .map(|&pc| {
            run_colocated_reference(
                &tb.node,
                &tb.fw,
                vec![
                    JobSpec::from_profile(a.profile().clone(), mb, pc.a),
                    JobSpec::from_profile(b.profile().clone(), mb, pc.b),
                ],
            )
        })
        .collect::<Result<_, _>>()?;
    let wall_s = t0.elapsed().as_secs_f64();
    let events = runs
        .iter()
        .flat_map(|(outs, _)| outs.iter())
        .map(|o| o.timeline.len() as u64)
        .sum();
    Ok(Arm {
        wall_s,
        sims: pcs.len() as u64,
        events,
    })
}

/// Scheduler workload geometry: (node count, workload).
fn scheduler_load(quick: bool) -> (usize, ecost_apps::Workload) {
    let nodes = if quick { 2 } else { 4 };
    let size = if quick {
        InputSize::Small
    } else {
        InputSize::Medium
    };
    (nodes, WorkloadScenario::Ws1.workload(size))
}

fn scheduler_setup() -> FaultSetup {
    FaultSetup {
        plan: FaultPlan::none(),
        retry: RetryPolicy::none(),
    }
}

/// Event count of the scheduler run: one span per per-job execution
/// segment, counted on a recording pass. The run is deterministic, so the
/// count transfers to the separately timed no-op-recorder passes.
fn scheduler_events(quick: bool) -> Result<u64, BenchError> {
    let (nodes, wl) = scheduler_load(quick);
    let counting = EvalEngine::with_recorder(Testbed::atom(), Recorder::recording());
    run_untuned_faulted(&counting, nodes, &wl, None, &scheduler_setup())?;
    Ok(counting
        .recorder()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Span { .. }))
        .count() as u64)
}

/// One timed pass of the streaming scheduler (wait queue, paired
/// placement, per-node event loops) under the untuned policy, fault-free.
fn scheduler_timed(quick: bool, pool: &mut PoolTotals) -> Result<Arm, BenchError> {
    let (nodes, wl) = scheduler_load(quick);
    let eng = EvalEngine::atom();
    let t0 = Instant::now();
    run_untuned_faulted(&eng, nodes, &wl, None, &scheduler_setup())?;
    let wall_s = t0.elapsed().as_secs_f64();
    pool.absorb(&eng);
    Ok(Arm {
        wall_s,
        sims: eng.stats().runs_simulated,
        events: 0,
    })
}

fn section(
    out: &mut String,
    name: &str,
    optimized: Option<Arm>,
    baseline: Option<Arm>,
    extra: &[(&str, String)],
) {
    let _ = writeln!(out, "  \"{name}\": {{");
    for (k, v) in extra {
        let _ = writeln!(out, "    \"{k}\": {v},");
    }
    if let Some(arm) = optimized {
        let _ = writeln!(out, "    \"optimized\": {{");
        arm.json(out, "      ");
        let _ = writeln!(out, "    }},");
    }
    if let Some(arm) = baseline {
        let _ = writeln!(out, "    \"baseline\": {{");
        arm.json(out, "      ");
        let _ = writeln!(out, "    }},");
    }
    if let (Some(o), Some(b)) = (optimized, baseline) {
        let speedup = if o.wall_s > 0.0 {
            b.wall_s / o.wall_s
        } else {
            0.0
        };
        let _ = writeln!(out, "    \"speedup\": {speedup:.2}");
    } else {
        // Trailing-comma fixup: re-close the last written block.
        if out.ends_with("}},\n") || out.ends_with("},\n") {
            out.truncate(out.len() - 2);
            out.push('\n');
        }
    }
    let _ = writeln!(out, "  }},");
}

fn run(baseline_only: bool) -> Result<(), BenchError> {
    let quick = std::env::var("ECOST_QUICK").is_ok_and(|v| v == "1");
    let tb = Testbed::atom();
    let mb = InputSize::Small.per_node_mb();
    let rounds = if quick { 3 } else { 7 };
    let mut pool = PoolTotals::default();

    let solo_cfgs: Vec<TuningConfig> = TuningConfig::space(tb.node.cores).collect();
    let apps = solo_apps(quick);
    eprintln!(
        "[bench_report] solo sweep: {} apps x {} configs, {} rounds ({})…",
        apps.len(),
        solo_cfgs.len(),
        rounds,
        if quick { "quick" } else { "full" }
    );
    let mut solo_base: Option<Arm> = None;
    let mut solo_opt: Option<Arm> = None;
    for _ in 0..rounds {
        solo_base = faster(solo_base, solo_baseline(&apps, mb, &solo_cfgs)?);
        if !baseline_only {
            solo_opt = faster(solo_opt, solo_optimized(&apps, mb, &solo_cfgs, &mut pool)?);
        }
    }
    let solo_base = solo_base.ok_or(BenchError::Invalid("no solo rounds ran".into()))?;

    let all_pcs = PairConfig::space(tb.node.cores);
    let stride = if quick { 32 } else { 1 };
    let pcs: Vec<PairConfig> = all_pcs.into_iter().step_by(stride).collect();
    eprintln!(
        "[bench_report] pair sweep: {} configs, {rounds} rounds…",
        pcs.len()
    );
    let mut pair_base: Option<Arm> = None;
    let mut pair_opt: Option<Arm> = None;
    for _ in 0..rounds {
        pair_base = faster(pair_base, pair_baseline(App::Gp, App::St, mb, &pcs)?);
        if !baseline_only {
            pair_opt = faster(
                pair_opt,
                pair_optimized(App::Gp, App::St, mb, &pcs, &mut pool)?,
            );
        }
    }
    let pair_base = pair_base.ok_or(BenchError::Invalid("no pair rounds ran".into()))?;
    // Bit-identical arms: the baseline's event count is the event count
    // (the engine's pair memo keeps metrics, not timelines).
    let pair_opt = pair_opt.map(|mut arm| {
        arm.events = pair_base.events;
        arm
    });

    eprintln!("[bench_report] scheduler run, {rounds} rounds…");
    let (nodes, wl) = scheduler_load(quick);
    let jobs = wl.jobs.len();
    let sched_events = scheduler_events(quick)?;
    let mut sched: Option<Arm> = None;
    for _ in 0..rounds {
        sched = faster(sched, scheduler_timed(quick, &mut pool)?);
    }
    let mut sched = sched.ok_or(BenchError::Invalid("no scheduler rounds ran".into()))?;
    sched.events = sched_events;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ecost-bench-sim/1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(
        out,
        "  \"arms\": \"{}\",",
        if baseline_only {
            "baseline-only"
        } else {
            "both"
        }
    );
    let _ = writeln!(out, "  \"threads\": {},", rayon::current_num_threads());
    section(
        &mut out,
        "solo_sweep",
        solo_opt,
        Some(solo_base),
        &[
            ("apps", apps.len().to_string()),
            ("configs", solo_cfgs.len().to_string()),
        ],
    );
    section(
        &mut out,
        "pair_sweep",
        pair_opt,
        Some(pair_base),
        &[("configs", pcs.len().to_string())],
    );
    section(
        &mut out,
        "scheduler",
        Some(sched),
        None,
        &[("nodes", nodes.to_string()), ("jobs", jobs.to_string())],
    );
    let _ = writeln!(out, "  \"pool\": {{");
    let _ = writeln!(out, "    \"sims_created\": {},", pool.created);
    let _ = writeln!(out, "    \"sims_reused\": {},", pool.reused);
    let total = pool.created + pool.reused;
    let frac = if total > 0 {
        pool.reused as f64 / total as f64
    } else {
        0.0
    };
    let _ = writeln!(out, "    \"reuse_frac\": {frac:.4}");
    out.push_str("  }\n}\n");

    let path = std::env::var("ECOST_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&path, &out)?;
    println!("{out}");
    eprintln!("[bench_report] wrote {path}");
    Ok(())
}

fn main() -> ExitCode {
    let baseline_only = std::env::args().any(|a| a == "--baseline");
    ecost_bench::run_main("bench_report", || run(baseline_only))
}
