//! Regenerates the paper artifact `ablation_job_cap` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("ablation_job_cap", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::ablation_job_cap(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("ablation_job_cap_{i}"))?;
        }
        Ok(())
    })
}
