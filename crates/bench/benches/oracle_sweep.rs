//! Benchmarks of the brute-force machinery: the 160-point standalone sweep
//! (ILAO's unit of work) and the 11 200-point pair sweep (COLAO's). The
//! paper needed a cluster-month for these; the reproduction needs this bench
//! to stay in seconds.
//!
//! A fresh engine per iteration keeps the memo cold — the bench measures
//! simulation, not a cache hit.

use criterion::{criterion_group, criterion_main, Criterion};
use ecost_apps::{App, InputSize};
use ecost_core::engine::EvalEngine;

fn bench_sweeps(c: &mut Criterion) {
    let mb = InputSize::Small.per_node_mb();
    let mut g = c.benchmark_group("oracle_sweep");
    g.sample_size(10);
    g.bench_function("solo_sweep_160", |b| {
        b.iter(|| {
            let eng = EvalEngine::atom();
            eng.sweep_solo(App::Gp.profile(), mb).expect("sweep")
        })
    });
    g.bench_function("pair_sweep_11200", |b| {
        b.iter(|| {
            let eng = EvalEngine::atom();
            eng.pair_sweep(App::Gp.profile(), mb, App::St.profile(), mb)
                .expect("sweep")
        })
    });
    g.bench_function("best_pair_with_partition", |b| {
        b.iter(|| {
            let eng = EvalEngine::atom();
            eng.best_pair_with_partition(App::Gp.profile(), mb, App::St.profile(), mb, (4, 4))
                .expect("sweep")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
