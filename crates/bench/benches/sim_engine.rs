//! Micro-benchmarks of the execution substrate: a single standalone run and
//! a co-located pair run. These are the atoms of the paper's 84 480-run
//! brute-force study, so their cost bounds every oracle sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::{run_colocated, run_standalone};
use ecost_mapreduce::{BlockSize, FrameworkSpec, JobSpec, TuningConfig};
use ecost_sim::{Frequency, NodeSpec};

fn cfg(m: u32) -> TuningConfig {
    TuningConfig {
        freq: Frequency::F2_0,
        block: BlockSize::B256,
        mappers: m,
    }
}

fn bench_standalone(c: &mut Criterion) {
    let spec = NodeSpec::atom_c2758();
    let fw = FrameworkSpec::default();
    let mut g = c.benchmark_group("sim_engine");
    for app in [App::Wc, App::St, App::Fp] {
        g.bench_function(format!("standalone_{app}_10GB"), |b| {
            b.iter(|| {
                let job = JobSpec::new(black_box(app), InputSize::Large, cfg(4));
                run_standalone(&spec, &fw, job).expect("sim")
            })
        });
    }
    g.bench_function("colocated_pair_wc_st_10GB", |b| {
        b.iter(|| {
            let jobs = vec![
                JobSpec::new(App::Wc, InputSize::Large, cfg(6)),
                JobSpec::new(App::St, InputSize::Large, cfg(2)),
            ];
            run_colocated(&spec, &fw, jobs).expect("sim")
        })
    });
    g.bench_function("amva_solve_4class", |b| {
        let classes: Vec<ecost_sim::ClassDemand> = (0..4)
            .map(|i| ecost_sim::ClassDemand {
                population: 2.0,
                think_time_s: 1.0 + i as f64,
                demands_s: vec![0.5, 0.1 * i as f64, 0.0, 0.0, 0.0],
            })
            .collect();
        b.iter(|| ecost_sim::amva::solve(black_box(&classes), 5).expect("solve"))
    });
    g.finish();
}

criterion_group!(benches, bench_standalone);
criterion_main!(benches);
