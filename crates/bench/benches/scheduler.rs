//! Benchmark of the cluster scheduler: one full workload through the
//! untuned mapping policies (the tuned ones amortise an offline phase that
//! belongs in the experiment binaries, not a microbenchmark).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecost_apps::{InputSize, WorkloadScenario};
use ecost_core::engine::EvalEngine;
use ecost_core::mapping::{run_policy, ConfiguredPolicy, MappingPolicy};

fn bench_scheduler(c: &mut Criterion) {
    let eng = EvalEngine::atom();
    let workload = WorkloadScenario::Ws4.workload(InputSize::Small);
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    for policy in [MappingPolicy::Sm, MappingPolicy::Snm, MappingPolicy::Cbm] {
        let p = ConfiguredPolicy::new(policy, None).expect("untuned policy");
        g.bench_function(format!("{}_ws4_4nodes", policy.label()), |b| {
            b.iter(|| run_policy(&eng, 4, black_box(&workload), &p).expect("run"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
