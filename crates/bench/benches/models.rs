//! Benchmarks of the ML substrate: fitting and single-row prediction for
//! the three model families on a common synthetic regression problem sized
//! like one class-pair training set.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecost_ml::model::Regressor;
use ecost_ml::{Dataset, LinearRegression, Mlp, MlpConfig, RepTree, RepTreeConfig};

/// A nonlinear 25-feature target with the rough shape of the EDP surface.
fn training_set(rows: usize) -> Dataset {
    let cols: Vec<String> = (0..25).map(|i| format!("x{i}")).collect();
    let mut d = Dataset::new(cols, "y");
    for i in 0..rows {
        let x: Vec<f64> = (0..25)
            .map(|j| (((i * 31 + j * 17) % 97) as f64) / 97.0 * 4.0 - 2.0)
            .collect();
        let y = (x[0] * x[1]).tanh() + 1.0 / (1.0 + x[2].abs()) + 0.3 * x[3] + (x[4] * 2.0).sin();
        d.push(x, y);
    }
    d
}

fn bench_models(c: &mut Criterion) {
    let small = training_set(2_000);
    let mut g = c.benchmark_group("models_train");
    g.sample_size(10);
    g.bench_function("lr_fit_2k", |b| {
        b.iter(|| {
            let mut m = LinearRegression::new();
            m.fit(black_box(&small));
            m
        })
    });
    g.bench_function("reptree_fit_2k", |b| {
        b.iter(|| {
            let mut m = RepTree::new(RepTreeConfig::default());
            m.fit(black_box(&small));
            m
        })
    });
    g.bench_function("mlp_fit_2k_x30epochs", |b| {
        b.iter(|| {
            let mut m = Mlp::new(MlpConfig {
                hidden: vec![32, 16],
                epochs: 30,
                val_fraction: 0.0,
                ..MlpConfig::default()
            });
            m.fit(black_box(&small));
            m
        })
    });
    g.finish();

    let mut lr = LinearRegression::new();
    lr.fit(&small);
    let mut tree = RepTree::new(RepTreeConfig::default());
    tree.fit(&small);
    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![32, 16],
        epochs: 30,
        val_fraction: 0.0,
        ..MlpConfig::default()
    });
    mlp.fit(&small);
    let probe = small.x[7].clone();

    let mut g = c.benchmark_group("models_predict");
    g.bench_function("lr_predict", |b| b.iter(|| lr.predict(black_box(&probe))));
    g.bench_function("reptree_predict", |b| {
        b.iter(|| tree.predict(black_box(&probe)))
    });
    g.bench_function("mlp_predict", |b| b.iter(|| mlp.predict(black_box(&probe))));
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
