//! Benchmark of the STP decision latency — the run-time overhead the paper
//! charges against each technique in Fig 8(b). Uses a miniature database
//! (one training pair) so the bench measures decision mechanics, not the
//! offline sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecost_apps::{App, AppClass, InputSize};
use ecost_core::classify::KnnAppClassifier;
use ecost_core::engine::EvalEngine;
use ecost_core::features::profile_catalog_app;
use ecost_core::stp::{encode_columns, encode_row, LktStp, MlmStp, Stp};
use ecost_ml::model::Regressor as _;
use ecost_ml::{Dataset, LinearRegression, RepTree, RepTreeConfig};

fn bench_decisions(c: &mut Criterion) {
    let eng = EvalEngine::atom();
    let mb = InputSize::Small.per_node_mb();
    let idle = eng.idle_w();

    // Miniature offline phase: one wc-st pair.
    let sig_wc = profile_catalog_app(&eng, App::Wc, InputSize::Small, 0.0, 0).expect("profile");
    let sig_st = profile_catalog_app(&eng, App::St, InputSize::Small, 0.0, 0).expect("profile");
    let sweep = eng
        .pair_sweep(App::Wc.profile(), mb, App::St.profile(), mb)
        .expect("sweep");
    let best = sweep.best(idle).expect("non-empty sweep");

    let db = ecost_core::database::ConfigDatabase {
        pairs: vec![ecost_core::database::PairEntry {
            a: App::Wc,
            b: App::St,
            size: InputSize::Small,
            classes: ecost_apps::class::ClassPair::new(AppClass::C, AppClass::I),
            sig_a: sig_wc.key(),
            sig_b: sig_st.key(),
            config: best.config,
            edp_wall: best.metrics.edp_wall(idle),
        }],
        solos: vec![],
        signatures: vec![],
        build_seconds: 0.0,
    };
    let lkt = LktStp::from_database(&db);

    let mut ds = Dataset::new(encode_columns(), "ln_edp");
    for run in sweep.runs().iter() {
        // The engine stores sweeps in normalised orientation; reorient so
        // `.a` lines up with wc's signature.
        let cfg = if sweep.swapped() {
            run.config.swapped()
        } else {
            run.config
        };
        ds.push(
            encode_row(&sig_wc.key(), cfg.a, &sig_st.key(), cfg.b),
            run.metrics.edp_wall(idle).ln(),
        );
    }
    let training: Vec<(ecost_core::features::AppSignature, AppClass)> =
        vec![(sig_wc.clone(), AppClass::C), (sig_st.clone(), AppClass::I)];
    let knn = KnnAppClassifier::fit(&training);
    let cp = ecost_apps::class::ClassPair::new(AppClass::C, AppClass::I);
    let mut lr_model = LinearRegression::new();
    lr_model.fit(&ds);
    let mut tree_model = RepTree::new(RepTreeConfig::default());
    tree_model.fit(&ds);
    let lr = MlmStp::new([(cp, lr_model)].into(), knn.clone(), "LR");
    let tree = MlmStp::new([(cp, tree_model)].into(), knn, "REPTree");

    let mut g = c.benchmark_group("stp_decision");
    g.bench_function("lkt_choose", |b| {
        b.iter(|| {
            lkt.choose(black_box(&sig_wc), black_box(&sig_st), 8)
                .expect("choice")
        })
    });
    g.bench_function("lr_choose_argmin_11200", |b| {
        b.iter(|| {
            lr.choose(black_box(&sig_wc), black_box(&sig_st), 8)
                .expect("choice")
        })
    });
    g.bench_function("reptree_choose_argmin_11200", |b| {
        b.iter(|| {
            tree.choose(black_box(&sig_wc), black_box(&sig_st), 8)
                .expect("choice")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
