//! The 11 studied applications (§2.2), as calibrated demand profiles.
//!
//! Class assignments follow the paper's Table 3 where it names them:
//! C ⊇ {svm, wc, hmm}, H ⊇ {ts, gp}, I = {st}, M ⊇ {cf, fp}. The three
//! applications Table 3 never lists (NB, KM, PR) are assigned from the
//! HiBench-style characterisation literature the paper builds on
//! (Malik et al., ISPASS'16 / IISWC'17): NB and KM are compute-bound
//! classifier/clustering kernels, PageRank is a hybrid with a heavy shuffle.
//!
//! The split into *training* (known) and *testing* (unknown) applications is
//! exactly §7: NB, CF, SVM, PR, HMM and KM are never used to build the
//! database or the models.
//!
//! ## Calibration notes
//!
//! With the Atom node spec and a 512 MB block at 2.4 GHz:
//!
//! * **wc** moves ~65 s of compute per task against ~8 s of I/O — firmly
//!   compute-bound; CPUuser dominates. (Hundreds of cycles per byte is the
//!   realistic cost of Hadoop's Java text-processing path on an in-order
//!   Atom.)
//! * **st** moves ~15 s of I/O (unit selectivity, 1.3× spill) against ~4 s of
//!   compute — I/O-bound with large iowait gaps for a co-runner to fill.
//! * **ts**/**gp** sit in between (TeraSort shuffles its whole input; Grep
//!   scans everything but keeps almost nothing).
//! * **cf**/**fp** demand 1.4–1.7 GB/s of memory bandwidth per busy core, so
//!   6–8 cores saturate the node's ~9.5 GB/s — memory-bound, and their
//!   multi-GB working sets pressure the 8 GB of DRAM.

use crate::class::AppClass;
use crate::profile::AppProfile;
use std::fmt;

/// One of the paper's 11 Hadoop applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum App {
    /// WordCount — compute-bound micro-benchmark.
    Wc,
    /// Sort — the I/O-bound micro-benchmark.
    St,
    /// Grep — hybrid scan micro-benchmark.
    Gp,
    /// TeraSort — hybrid micro-benchmark with a full-input shuffle.
    Ts,
    /// Naïve Bayes (test app, compute-bound).
    Nb,
    /// FP-Growth (memory-bound, training app).
    Fp,
    /// Collaborative Filtering (test app, memory-bound).
    Cf,
    /// Support Vector Machine (test app, compute-bound).
    Svm,
    /// PageRank (test app, hybrid).
    Pr,
    /// Hidden Markov Model (test app, compute-bound).
    Hmm,
    /// K-Means (test app, compute-bound).
    Km,
}

/// The training ("known") set used to build the database and the models:
/// the four micro-benchmarks plus FP-Growth. Covers all four classes.
pub const TRAINING_APPS: [App; 5] = [App::Wc, App::St, App::Gp, App::Ts, App::Fp];

/// The testing ("unknown") set of §7: never seen during training.
pub const TEST_APPS: [App; 6] = [App::Nb, App::Cf, App::Svm, App::Pr, App::Hmm, App::Km];

/// All 11 applications.
pub const ALL_APPS: [App; 11] = [
    App::Wc,
    App::St,
    App::Gp,
    App::Ts,
    App::Nb,
    App::Fp,
    App::Cf,
    App::Svm,
    App::Pr,
    App::Hmm,
    App::Km,
];

const WC: AppProfile = AppProfile {
    name: "wc",
    class: AppClass::C,
    map_cycles_per_mb: 300e6,
    task_overhead_cycles: 2.2e9,
    map_selectivity: 0.06,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 200e6,
    output_selectivity: 0.04,
    job_overhead_s: 9.0,
    llc_mpki: 1.3,
    ipc_base: 1.15,
    mem_stall_frac: 0.15,
    icache_mpki: 4.0,
    branch_misp_pct: 2.2,
    working_set_frac: 0.015,
    footprint_base_mb: 280.0,
};

const ST: AppProfile = AppProfile {
    name: "st",
    class: AppClass::I,
    map_cycles_per_mb: 15e6,
    task_overhead_cycles: 2.0e9,
    map_selectivity: 1.0,
    spill_factor: 1.3,
    reduce_cycles_per_mb: 24e6,
    output_selectivity: 1.0,
    job_overhead_s: 9.0,
    llc_mpki: 3.1,
    ipc_base: 0.85,
    mem_stall_frac: 0.25,
    icache_mpki: 4.0,
    branch_misp_pct: 1.6,
    working_set_frac: 0.04,
    footprint_base_mb: 380.0,
};

const GP: AppProfile = AppProfile {
    name: "gp",
    class: AppClass::H,
    map_cycles_per_mb: 130e6,
    task_overhead_cycles: 2.2e9,
    map_selectivity: 0.012,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 60e6,
    output_selectivity: 0.006,
    job_overhead_s: 8.0,
    llc_mpki: 2.2,
    ipc_base: 1.05,
    mem_stall_frac: 0.2,
    icache_mpki: 5.0,
    branch_misp_pct: 2.0,
    working_set_frac: 0.02,
    footprint_base_mb: 260.0,
};

const TS: AppProfile = AppProfile {
    name: "ts",
    class: AppClass::H,
    map_cycles_per_mb: 110e6,
    task_overhead_cycles: 2.0e9,
    map_selectivity: 1.0,
    spill_factor: 1.25,
    reduce_cycles_per_mb: 48e6,
    output_selectivity: 1.0,
    job_overhead_s: 10.0,
    llc_mpki: 3.6,
    ipc_base: 0.9,
    mem_stall_frac: 0.3,
    icache_mpki: 6.0,
    branch_misp_pct: 2.4,
    working_set_frac: 0.05,
    footprint_base_mb: 450.0,
};

const NB: AppProfile = AppProfile {
    name: "nb",
    class: AppClass::C,
    map_cycles_per_mb: 255e6,
    task_overhead_cycles: 2.0e9,
    map_selectivity: 0.09,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 180e6,
    output_selectivity: 0.05,
    job_overhead_s: 9.0,
    llc_mpki: 1.9,
    ipc_base: 1.05,
    mem_stall_frac: 0.18,
    icache_mpki: 7.0,
    branch_misp_pct: 2.9,
    working_set_frac: 0.05,
    footprint_base_mb: 380.0,
};

const FP: AppProfile = AppProfile {
    name: "fp",
    class: AppClass::M,
    map_cycles_per_mb: 320e6,
    task_overhead_cycles: 2.7e9,
    map_selectivity: 0.12,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 220e6,
    output_selectivity: 0.08,
    job_overhead_s: 12.0,
    llc_mpki: 16.5,
    ipc_base: 0.66,
    mem_stall_frac: 0.8,
    icache_mpki: 7.0,
    branch_misp_pct: 3.8,
    working_set_frac: 0.44,
    footprint_base_mb: 700.0,
};

const CF: AppProfile = AppProfile {
    name: "cf",
    class: AppClass::M,
    map_cycles_per_mb: 290e6,
    task_overhead_cycles: 2.5e9,
    map_selectivity: 0.10,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 200e6,
    output_selectivity: 0.12,
    job_overhead_s: 11.0,
    llc_mpki: 14.5,
    ipc_base: 0.70,
    mem_stall_frac: 0.75,
    icache_mpki: 6.0,
    branch_misp_pct: 3.4,
    working_set_frac: 0.38,
    footprint_base_mb: 650.0,
};

const SVM: AppProfile = AppProfile {
    name: "svm",
    class: AppClass::C,
    map_cycles_per_mb: 330e6,
    task_overhead_cycles: 2.4e9,
    map_selectivity: 0.05,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 180e6,
    output_selectivity: 0.01,
    job_overhead_s: 10.0,
    llc_mpki: 1.6,
    ipc_base: 1.1,
    mem_stall_frac: 0.17,
    icache_mpki: 5.0,
    branch_misp_pct: 2.5,
    working_set_frac: 0.02,
    footprint_base_mb: 330.0,
};

const PR: AppProfile = AppProfile {
    name: "pr",
    class: AppClass::H,
    map_cycles_per_mb: 125e6,
    task_overhead_cycles: 2.4e9,
    map_selectivity: 0.8,
    spill_factor: 1.2,
    reduce_cycles_per_mb: 52e6,
    output_selectivity: 0.7,
    job_overhead_s: 11.0,
    llc_mpki: 4.2,
    ipc_base: 0.88,
    mem_stall_frac: 0.32,
    icache_mpki: 8.0,
    branch_misp_pct: 4.5,
    working_set_frac: 0.07,
    footprint_base_mb: 480.0,
};

const HMM: AppProfile = AppProfile {
    name: "hmm",
    class: AppClass::C,
    map_cycles_per_mb: 272e6,
    task_overhead_cycles: 2.4e9,
    map_selectivity: 0.07,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 160e6,
    output_selectivity: 0.02,
    job_overhead_s: 10.0,
    llc_mpki: 1.2,
    ipc_base: 1.18,
    mem_stall_frac: 0.14,
    icache_mpki: 5.0,
    branch_misp_pct: 2.6,
    working_set_frac: 0.013,
    footprint_base_mb: 300.0,
};

const KM: AppProfile = AppProfile {
    name: "km",
    class: AppClass::C,
    map_cycles_per_mb: 340e6,
    task_overhead_cycles: 2.3e9,
    map_selectivity: 0.05,
    spill_factor: 1.0,
    reduce_cycles_per_mb: 170e6,
    output_selectivity: 0.02,
    job_overhead_s: 10.0,
    llc_mpki: 2.3,
    ipc_base: 1.0,
    mem_stall_frac: 0.22,
    icache_mpki: 3.0,
    branch_misp_pct: 1.8,
    working_set_frac: 0.06,
    footprint_base_mb: 400.0,
};

impl App {
    /// The application's demand profile.
    pub fn profile(self) -> &'static AppProfile {
        match self {
            App::Wc => &WC,
            App::St => &ST,
            App::Gp => &GP,
            App::Ts => &TS,
            App::Nb => &NB,
            App::Fp => &FP,
            App::Cf => &CF,
            App::Svm => &SVM,
            App::Pr => &PR,
            App::Hmm => &HMM,
            App::Km => &KM,
        }
    }

    /// Short name as printed in the paper ("wc", "st", …).
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Ground-truth behaviour class.
    pub fn class(self) -> AppClass {
        self.profile().class
    }

    /// Is this one of the known/training applications?
    pub fn is_training(self) -> bool {
        TRAINING_APPS.contains(&self)
    }

    /// Parse a paper-style short name.
    pub fn from_name(name: &str) -> Option<App> {
        ALL_APPS.iter().copied().find(|a| a.name() == name)
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AppClass::*;

    #[test]
    fn all_profiles_validate() {
        for app in ALL_APPS {
            app.profile().validate().expect("profile invariant");
        }
    }

    #[test]
    fn class_assignments_match_paper_table3() {
        // Table 3 names these explicitly.
        for (app, class) in [
            (App::Svm, C),
            (App::Wc, C),
            (App::Hmm, C),
            (App::Ts, H),
            (App::Gp, H),
            (App::St, I),
            (App::Cf, M),
            (App::Fp, M),
        ] {
            assert_eq!(app.class(), class, "{app}");
        }
    }

    #[test]
    fn training_test_split_matches_section7() {
        // "NB, CF, SVM, PR, HMM and KM are assumed unknown applications and
        // were not used to generate the training dataset."
        for a in TEST_APPS {
            assert!(!a.is_training());
        }
        for a in TRAINING_APPS {
            assert!(a.is_training());
        }
        assert_eq!(TRAINING_APPS.len() + TEST_APPS.len(), ALL_APPS.len());
    }

    #[test]
    fn training_set_covers_all_classes() {
        for class in AppClass::ALL {
            assert!(
                TRAINING_APPS.iter().any(|a| a.class() == class),
                "no training app for class {class}"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for a in ALL_APPS {
            assert_eq!(App::from_name(a.name()), Some(a));
        }
        assert_eq!(App::from_name("zz"), None);
    }

    #[test]
    fn io_apps_have_low_compute_density() {
        // Class separation sanity: the I app computes less per MB than any
        // C app and the M apps have the highest LLC MPKI.
        let st = App::St.profile();
        for a in ALL_APPS {
            let p = a.profile();
            match p.class {
                C => assert!(
                    p.map_cycles_per_mb > 4.0 * st.map_cycles_per_mb,
                    "{}",
                    p.name
                ),
                M => assert!(p.llc_mpki > 10.0, "{}", p.name),
                _ => {}
            }
        }
    }

    #[test]
    fn memory_apps_pressure_node_bandwidth() {
        // 8 busy cores of an M app must exceed the Atom's ~9.5 GB/s.
        for app in [App::Cf, App::Fp] {
            let bw8 = 8.0 * app.profile().mem_bw_per_core_mbps(2.4e9);
            assert!(bw8 > 9.5 * 1024.0, "{app}: {bw8}");
        }
        // …while C apps leave it untouched.
        let wc8 = 8.0 * App::Wc.profile().mem_bw_per_core_mbps(2.4e9);
        assert!(wc8 < 0.4 * 9.5 * 1024.0);
    }
}
