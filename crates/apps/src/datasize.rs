//! Input data scales (§2.3 of the paper): 1, 5 and 10 GB *per node*,
//! representing small, medium and large data sets. On an `n`-node cluster an
//! application therefore processes `n ×` that amount in total.

use std::fmt;

/// Per-node input data size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InputSize {
    /// 1 GB per node.
    Small,
    /// 5 GB per node.
    Medium,
    /// 10 GB per node.
    Large,
}

impl InputSize {
    /// The three studied sizes, ascending.
    pub const ALL: [InputSize; 3] = [InputSize::Small, InputSize::Medium, InputSize::Large];

    /// Per-node bytes expressed in MB (the unit the executor works in).
    #[inline]
    pub fn per_node_mb(self) -> f64 {
        match self {
            InputSize::Small => 1024.0,
            InputSize::Medium => 5.0 * 1024.0,
            InputSize::Large => 10.0 * 1024.0,
        }
    }

    /// Per-node gigabytes, as quoted in the paper.
    #[inline]
    pub fn per_node_gb(self) -> f64 {
        self.per_node_mb() / 1024.0
    }

    /// Index 0..=2 (ascending).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            InputSize::Small => 0,
            InputSize::Medium => 1,
            InputSize::Large => 2,
        }
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}GB", self.per_node_gb() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(InputSize::Small.per_node_gb(), 1.0);
        assert_eq!(InputSize::Medium.per_node_gb(), 5.0);
        assert_eq!(InputSize::Large.per_node_gb(), 10.0);
    }

    #[test]
    fn ascending_order() {
        for w in InputSize::ALL.windows(2) {
            assert!(w[0].per_node_mb() < w[1].per_node_mb());
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn display() {
        assert_eq!(InputSize::Medium.to_string(), "5GB");
    }
}
