//! Synthetic application generator.
//!
//! The paper's controller must handle *unknown* incoming applications. The
//! catalog's six test applications exercise that, but for property-based and
//! stress testing we also generate unlimited synthetic applications with a
//! requested behaviour class: each draws its demand parameters from a
//! class-specific envelope wide enough to be interesting but narrow enough
//! that the ground-truth class stays correct.

use crate::class::AppClass;
use crate::profile::AppProfile;
use rand::Rng;

/// Inclusive parameter envelope for one class.
struct Envelope {
    map_cycles_per_mb: (f64, f64),
    map_selectivity: (f64, f64),
    spill_factor: (f64, f64),
    llc_mpki: (f64, f64),
    ipc_base: (f64, f64),
    mem_stall_frac: (f64, f64),
    working_set_frac: (f64, f64),
}

fn envelope(class: AppClass) -> Envelope {
    match class {
        AppClass::C => Envelope {
            map_cycles_per_mb: (250e6, 430e6),
            map_selectivity: (0.01, 0.12),
            spill_factor: (1.0, 1.05),
            llc_mpki: (1.0, 3.0),
            ipc_base: (0.9, 1.2),
            mem_stall_frac: (0.1, 0.3),
            working_set_frac: (0.01, 0.08),
        },
        AppClass::H => Envelope {
            map_cycles_per_mb: (100e6, 145e6),
            map_selectivity: (0.0, 1.0),
            spill_factor: (1.0, 1.3),
            llc_mpki: (2.0, 6.0),
            ipc_base: (0.8, 1.1),
            mem_stall_frac: (0.15, 0.45),
            working_set_frac: (0.02, 0.15),
        },
        AppClass::I => Envelope {
            map_cycles_per_mb: (8e6, 25e6),
            map_selectivity: (0.8, 1.2),
            spill_factor: (1.1, 1.5),
            llc_mpki: (2.0, 4.5),
            ipc_base: (0.75, 1.0),
            mem_stall_frac: (0.15, 0.35),
            working_set_frac: (0.02, 0.08),
        },
        AppClass::M => Envelope {
            map_cycles_per_mb: (250e6, 340e6),
            map_selectivity: (0.1, 0.25),
            spill_factor: (1.0, 1.1),
            llc_mpki: (11.0, 20.0),
            ipc_base: (0.6, 0.8),
            mem_stall_frac: (0.6, 0.9),
            working_set_frac: (0.25, 0.5),
        },
    }
}

fn draw<R: Rng>(rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Generate a synthetic application of the requested class.
///
/// The returned profile leaks its name (profiles hold `&'static str` so the
/// catalog can be `const`); callers generating unbounded numbers of profiles
/// in a loop should reuse names via [`synth_app_named`].
pub fn synth_app<R: Rng>(rng: &mut R, class: AppClass, id: u32) -> AppProfile {
    let name: &'static str = Box::leak(format!("syn-{}{id}", class.letter()).into_boxed_str());
    synth_app_named(rng, class, name)
}

/// As [`synth_app`] but with a caller-provided name (no leak).
pub fn synth_app_named<R: Rng>(rng: &mut R, class: AppClass, name: &'static str) -> AppProfile {
    let e = envelope(class);
    let p = AppProfile {
        name,
        class,
        map_cycles_per_mb: draw(rng, e.map_cycles_per_mb),
        task_overhead_cycles: rng.gen_range(1.8e9..=3.0e9),
        map_selectivity: draw(rng, e.map_selectivity),
        spill_factor: draw(rng, e.spill_factor),
        reduce_cycles_per_mb: rng.gen_range(25e6..=110e6),
        output_selectivity: draw(rng, e.map_selectivity) * 0.8,
        job_overhead_s: rng.gen_range(8.0..=12.0),
        llc_mpki: draw(rng, e.llc_mpki),
        ipc_base: draw(rng, e.ipc_base),
        mem_stall_frac: draw(rng, e.mem_stall_frac),
        icache_mpki: rng.gen_range(3.0..=8.0),
        branch_misp_pct: rng.gen_range(1.5..=4.5),
        working_set_frac: draw(rng, e.working_set_frac),
        footprint_base_mb: rng.gen_range(250.0..=700.0),
    };
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn synthetic_profiles_validate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for class in AppClass::ALL {
            for i in 0..20 {
                let p = synth_app_named(&mut rng, class, "syn-test");
                p.validate().unwrap_or_else(|e| panic!("{class} #{i}: {e}"));
                assert_eq!(p.class, class);
            }
        }
    }

    #[test]
    fn classes_are_separable_in_expectation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let c = synth_app_named(&mut rng, AppClass::C, "c");
            let i = synth_app_named(&mut rng, AppClass::I, "i");
            let m = synth_app_named(&mut rng, AppClass::M, "m");
            assert!(c.map_cycles_per_mb > 4.0 * i.map_cycles_per_mb);
            assert!(m.llc_mpki > 2.0 * c.llc_mpki);
            assert!(m.working_set_frac > c.working_set_frac);
        }
    }

    #[test]
    fn synth_app_names_embed_class_and_id() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = synth_app(&mut rng, AppClass::I, 42);
        assert_eq!(p.name, "syn-I42");
    }
}
