//! Workload scenarios — Table 3 of the paper.
//!
//! Each scenario is a stream of 16 applications submitted to the cluster.
//! The paper's Table 3 lists the application sequences; three of the rows
//! (WS2, WS6, WS7) print fewer than 16 entries in the paper PDF, so those are
//! reconstructed from the *class* row of the same table (which is complete)
//! using the scenario's own app-per-class convention. The reconstruction is
//! noted per scenario below.

use crate::catalog::App;
use crate::class::AppClass;
use crate::datasize::InputSize;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// One of the eight studied workload scenarios.
///
/// ```
/// use ecost_apps::{WorkloadScenario, InputSize, AppClass};
///
/// let ws3 = WorkloadScenario::Ws3.workload(InputSize::Medium);
/// assert_eq!(ws3.len(), 16);
/// // WS3 is the all-I/O scenario: sixteen Sorts.
/// assert_eq!(ws3.class_mix(), [0, 0, 16, 0]);
/// assert!(WorkloadScenario::Ws3.classes().iter().all(|c| *c == AppClass::I));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadScenario {
    /// All compute-bound: svm/wc/hmm mix.
    Ws1,
    /// All hybrid: ts/gp mix (16th entry reconstructed as ts).
    Ws2,
    /// All I/O-bound: 16× st.
    Ws3,
    /// [C,C,H,I] repeated.
    Ws4,
    /// [C,H,I,H] repeated.
    Ws5,
    /// Alternating H/I (reconstructed from the class row).
    Ws6,
    /// Memory-heavy with periodic I (reconstructed from the class row).
    Ws7,
    /// Mixed M/H/I/C.
    Ws8,
}

impl WorkloadScenario {
    /// All eight scenarios in paper order.
    pub const ALL: [WorkloadScenario; 8] = [
        WorkloadScenario::Ws1,
        WorkloadScenario::Ws2,
        WorkloadScenario::Ws3,
        WorkloadScenario::Ws4,
        WorkloadScenario::Ws5,
        WorkloadScenario::Ws6,
        WorkloadScenario::Ws7,
        WorkloadScenario::Ws8,
    ];

    /// The 16-application sequence of Table 3.
    pub fn apps(self) -> [App; 16] {
        use App::*;
        match self {
            WorkloadScenario::Ws1 => [
                Svm, Svm, Wc, Wc, Svm, Wc, Hmm, Wc, Hmm, Hmm, Wc, Wc, Hmm, Wc, Svm, Wc,
            ],
            WorkloadScenario::Ws2 => [
                Ts, Gp, Ts, Ts, Ts, Gp, Ts, Ts, Ts, Gp, Ts, Ts, Gp, Ts, Ts, Ts,
            ],
            WorkloadScenario::Ws3 => [St; 16],
            WorkloadScenario::Ws4 => [
                Svm, Wc, Ts, St, Wc, Wc, Ts, St, Hmm, Svm, Ts, St, Wc, Wc, Ts, St,
            ],
            WorkloadScenario::Ws5 => [
                Hmm, Ts, St, Ts, Wc, Ts, St, Ts, Svm, Ts, St, Ts, Hmm, Ts, St, Ts,
            ],
            WorkloadScenario::Ws6 => [
                Ts, St, Ts, St, Ts, Ts, St, St, Ts, St, Ts, St, Ts, St, Ts, St,
            ],
            WorkloadScenario::Ws7 => [
                Cf, Cf, Cf, St, Cf, Cf, Cf, St, Cf, Cf, Cf, Cf, Cf, Cf, St, Cf,
            ],
            WorkloadScenario::Ws8 => [
                Cf, Fp, Ts, St, Cf, Fp, Ts, St, Hmm, Svm, Ts, St, Wc, Wc, Ts, St,
            ],
        }
    }

    /// The class signature row of Table 3 (derived from the apps).
    pub fn classes(self) -> [AppClass; 16] {
        let mut out = [AppClass::C; 16];
        for (slot, app) in out.iter_mut().zip(self.apps()) {
            *slot = app.class();
        }
        out
    }

    /// Scenario label as in the paper ("WS1" …).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadScenario::Ws1 => "WS1",
            WorkloadScenario::Ws2 => "WS2",
            WorkloadScenario::Ws3 => "WS3",
            WorkloadScenario::Ws4 => "WS4",
            WorkloadScenario::Ws5 => "WS5",
            WorkloadScenario::Ws6 => "WS6",
            WorkloadScenario::Ws7 => "WS7",
            WorkloadScenario::Ws8 => "WS8",
        }
    }

    /// Materialise the scenario as a [`Workload`] with a uniform input size.
    pub fn workload(self, size: InputSize) -> Workload {
        Workload {
            name: self.label().to_string(),
            jobs: self.apps().iter().map(|&a| (a, size)).collect(),
        }
    }
}

impl fmt::Display for WorkloadScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete stream of jobs (application + input size) submitted to the
/// cluster in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable label.
    pub name: String,
    /// Submission order.
    pub jobs: Vec<(App, InputSize)>,
}

impl Workload {
    /// A uniformly random workload drawn from the full catalog — used by the
    /// robustness tests and ablations (the paper's "randomly selected
    /// workload policies").
    pub fn random<R: Rng>(rng: &mut R, len: usize, sizes: &[InputSize]) -> Workload {
        assert!(!sizes.is_empty(), "need at least one size");
        let jobs = (0..len)
            .map(|_| {
                let app = *crate::catalog::ALL_APPS.choose(rng).expect("non-empty");
                let size = *sizes.choose(rng).expect("non-empty");
                (app, size)
            })
            .collect();
        Workload {
            name: format!("random-{len}"),
            jobs,
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the workload has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Draw Poisson arrival times for this workload's jobs: exponential
    /// inter-arrival gaps with the given mean, cumulated from t = 0.
    /// Returned sorted, one entry per job.
    pub fn poisson_arrivals<R: Rng>(&self, rng: &mut R, mean_gap_s: f64) -> Vec<f64> {
        assert!(mean_gap_s > 0.0, "mean gap must be positive");
        let mut t = 0.0;
        (0..self.len())
            .map(|_| {
                // Inverse-CDF sampling of Exp(1/mean).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -mean_gap_s * u.ln();
                t
            })
            .collect()
    }

    /// Class histogram, in `AppClass::ALL` order.
    pub fn class_mix(&self) -> [usize; 4] {
        let mut mix = [0usize; 4];
        for (app, _) in &self.jobs {
            mix[match app.class() {
                AppClass::C => 0,
                AppClass::H => 1,
                AppClass::I => 2,
                AppClass::M => 3,
            }] += 1;
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AppClass::*;

    #[test]
    fn every_scenario_has_16_apps() {
        for ws in WorkloadScenario::ALL {
            assert_eq!(ws.apps().len(), 16, "{ws}");
        }
    }

    #[test]
    fn class_signatures_match_table3() {
        assert_eq!(WorkloadScenario::Ws1.classes(), [C; 16]);
        assert_eq!(WorkloadScenario::Ws2.classes(), [H; 16]);
        assert_eq!(WorkloadScenario::Ws3.classes(), [I; 16]);
        assert_eq!(
            WorkloadScenario::Ws4.classes(),
            [C, C, H, I, C, C, H, I, C, C, H, I, C, C, H, I]
        );
        assert_eq!(
            WorkloadScenario::Ws5.classes(),
            [C, H, I, H, C, H, I, H, C, H, I, H, C, H, I, H]
        );
        assert_eq!(
            WorkloadScenario::Ws6.classes(),
            [H, I, H, I, H, H, I, I, H, I, H, I, H, I, H, I]
        );
        // WS7's class row in the paper: M,M,M,I repeated-ish with I at the
        // same positions as the reconstructed st entries.
        let ws7 = WorkloadScenario::Ws7.classes();
        assert_eq!(ws7.iter().filter(|c| **c == I).count(), 3);
        assert_eq!(ws7.iter().filter(|c| **c == M).count(), 13);
        assert_eq!(
            WorkloadScenario::Ws8.classes(),
            [M, M, H, I, M, M, H, I, C, C, H, I, C, C, H, I]
        );
    }

    #[test]
    fn ws4_matches_table3_apps() {
        use App::*;
        assert_eq!(
            WorkloadScenario::Ws4.apps(),
            [Svm, Wc, Ts, St, Wc, Wc, Ts, St, Hmm, Svm, Ts, St, Wc, Wc, Ts, St]
        );
    }

    #[test]
    fn workload_materialisation() {
        let w = WorkloadScenario::Ws3.workload(InputSize::Small);
        assert_eq!(w.len(), 16);
        assert!(w
            .jobs
            .iter()
            .all(|(a, s)| *a == App::St && *s == InputSize::Small));
        assert_eq!(w.class_mix(), [0, 0, 16, 0]);
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_scale_with_rate() {
        use rand::SeedableRng;
        let w = WorkloadScenario::Ws4.workload(InputSize::Small);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let fast = w.poisson_arrivals(&mut rng, 10.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let slow = w.poisson_arrivals(&mut rng, 100.0);
        assert_eq!(fast.len(), 16);
        for win in fast.windows(2) {
            assert!(win[0] <= win[1]);
        }
        assert!((slow[15] / fast[15] - 10.0).abs() < 1e-9);
        // Mean of 16 exponential gaps should be in the right ballpark.
        let mean_gap = fast[15] / 16.0;
        assert!(mean_gap > 2.0 && mean_gap < 40.0, "{mean_gap}");
    }

    #[test]
    fn random_workload_is_reproducible() {
        use rand::SeedableRng;
        let mut a = rand::rngs::StdRng::seed_from_u64(42);
        let mut b = rand::rngs::StdRng::seed_from_u64(42);
        let wa = Workload::random(&mut a, 10, &InputSize::ALL);
        let wb = Workload::random(&mut b, 10, &InputSize::ALL);
        assert_eq!(wa, wb);
        assert_eq!(wa.len(), 10);
    }
}
