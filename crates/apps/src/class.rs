//! The four behaviour classes of §3.2.
//!
//! The paper characterises every application as compute-bound (C), hybrid
//! (H — a mix of compute and I/O), I/O-bound (I) or memory-bound (M), and
//! bases both the pairing decision tree and the per-class STP models on this
//! label.

use std::fmt;

/// Application behaviour class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AppClass {
    /// Compute-bound: high CPU-user utilisation, low iowait, low I/O
    /// bandwidth, low LLC MPKI (e.g. WordCount).
    C,
    /// Hybrid compute/I/O (e.g. TeraSort, Grep).
    H,
    /// I/O-bound: high iowait, high disk bandwidth, low CPU (e.g. Sort).
    I,
    /// Memory-bound: high LLC MPKI and large footprint (e.g. FP-Growth).
    M,
}

impl AppClass {
    /// All classes in the paper's enumeration order.
    pub const ALL: [AppClass; 4] = [AppClass::C, AppClass::H, AppClass::I, AppClass::M];

    /// Single-letter label used throughout the paper's tables.
    pub fn letter(self) -> char {
        match self {
            AppClass::C => 'C',
            AppClass::H => 'H',
            AppClass::I => 'I',
            AppClass::M => 'M',
        }
    }

    /// Parse the paper's single-letter label.
    pub fn from_letter(c: char) -> Option<AppClass> {
        match c.to_ascii_uppercase() {
            'C' => Some(AppClass::C),
            'H' => Some(AppClass::H),
            'I' => Some(AppClass::I),
            'M' => Some(AppClass::M),
            _ => None,
        }
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// An unordered pair of classes, the unit of the paper's Fig 3 / Fig 5 / Table
/// 1 analyses. Normalised so that `ClassPair::new(M, C) == ClassPair::new(C,
/// M)`, printed in the paper's "C-M" style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassPair {
    /// The lexically smaller class.
    pub first: AppClass,
    /// The lexically larger class.
    pub second: AppClass,
}

impl ClassPair {
    /// Build a normalised pair.
    pub fn new(a: AppClass, b: AppClass) -> ClassPair {
        if a <= b {
            ClassPair {
                first: a,
                second: b,
            }
        } else {
            ClassPair {
                first: b,
                second: a,
            }
        }
    }

    /// All 10 unordered class pairs, in the order Table 1 lists them.
    pub fn all() -> Vec<ClassPair> {
        let mut v = Vec::with_capacity(10);
        for (i, &a) in AppClass::ALL.iter().enumerate() {
            for &b in &AppClass::ALL[i..] {
                v.push(ClassPair::new(a, b));
            }
        }
        v
    }

    /// Does the pair contain a memory-bound application? (Fig 5: such pairs
    /// always rank last.)
    pub fn contains_m(self) -> bool {
        self.first == AppClass::M || self.second == AppClass::M
    }
}

impl fmt::Display for ClassPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_round_trip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::from_letter(c.letter()), Some(c));
            assert_eq!(
                AppClass::from_letter(c.letter().to_ascii_lowercase()),
                Some(c)
            );
        }
        assert_eq!(AppClass::from_letter('x'), None);
    }

    #[test]
    fn pair_is_unordered() {
        assert_eq!(
            ClassPair::new(AppClass::M, AppClass::C),
            ClassPair::new(AppClass::C, AppClass::M)
        );
        assert_eq!(ClassPair::new(AppClass::C, AppClass::M).to_string(), "C-M");
    }

    #[test]
    fn there_are_ten_pairs() {
        let all = ClassPair::all();
        assert_eq!(all.len(), 10);
        let uniq: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(uniq.len(), 10);
    }

    #[test]
    fn contains_m_detects_memory() {
        assert!(ClassPair::new(AppClass::M, AppClass::I).contains_m());
        assert!(!ClassPair::new(AppClass::C, AppClass::I).contains_m());
    }
}
