//! Application resource-demand profiles.
//!
//! An [`AppProfile`] is the simulation stand-in for a real Hadoop
//! application: everything the execution model needs to reproduce the
//! application's timing, power and counter signature. The fields were chosen
//! so that each of the paper's behaviour classes is driven by the "right"
//! physical bottleneck:
//!
//! * **C** (compute-bound): large `map_cycles_per_mb`, small selectivities,
//!   low `llc_mpki`;
//! * **I** (I/O-bound): tiny `map_cycles_per_mb`, unit selectivities (Sort
//!   rewrites its whole input), spill multipliers > 1;
//! * **H** (hybrid): balanced cycles vs. bytes;
//! * **M** (memory-bound): high `llc_mpki` (memory-bandwidth pressure), large
//!   `working_set_frac` (DRAM-capacity pressure), high `mem_stall_frac`.

use crate::class::AppClass;
use crate::datasize::InputSize;

/// Resource-demand profile of one application.
///
/// Units are chosen to match the executor: cycles, MB, seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Short name as used in the paper's tables ("wc", "st", …).
    pub name: &'static str,
    /// Ground-truth behaviour class (what the paper's offline
    /// characterisation would assign). The online classifier must *recover*
    /// this from counters; it never reads it.
    pub class: AppClass,

    // ---- map-side demands -------------------------------------------------
    /// CPU cycles per MB of input consumed by a map task.
    pub map_cycles_per_mb: f64,
    /// Fixed CPU cycles per map task (JVM spin-up, task setup). This is what
    /// punishes small HDFS blocks: more tasks, more overhead.
    pub task_overhead_cycles: f64,
    /// Map output bytes per input byte (shuffle selectivity σ).
    pub map_selectivity: f64,
    /// Extra disk traffic factor on map output (sort spills / merge passes).
    pub spill_factor: f64,

    // ---- reduce-side demands ----------------------------------------------
    /// CPU cycles per MB of shuffle data processed by a reducer.
    pub reduce_cycles_per_mb: f64,
    /// Final output bytes per input byte (ω).
    pub output_selectivity: f64,

    // ---- whole-job --------------------------------------------------------
    /// Fixed serial job start-up cost, seconds (Hadoop job init).
    pub job_overhead_s: f64,

    // ---- micro-architectural signature -------------------------------------
    /// Last-level-cache misses per kilo-instruction. Drives the memory
    /// bandwidth demand of each busy core.
    pub llc_mpki: f64,
    /// Baseline IPC with no memory-bandwidth contention.
    pub ipc_base: f64,
    /// Fraction of compute time that dilates when the core's memory
    /// bandwidth share is cut (µ in the model).
    pub mem_stall_frac: f64,
    /// Instruction-cache misses per kilo-instruction (counter flavour).
    pub icache_mpki: f64,
    /// Branch misprediction rate, percent (counter flavour).
    pub branch_misp_pct: f64,

    // ---- memory footprint --------------------------------------------------
    /// Resident working set as a fraction of the input size.
    pub working_set_frac: f64,
    /// Fixed resident footprint, MB (runtime, framework buffers).
    pub footprint_base_mb: f64,
}

impl AppProfile {
    /// Instructions executed per MB of map input (cycles × IPC).
    #[inline]
    pub fn map_instructions_per_mb(&self) -> f64 {
        self.map_cycles_per_mb * self.ipc_base
    }

    /// Memory-bandwidth demand of one busy core at `freq_hz`, in MB/s:
    /// `instructions/s × misses/instruction × 64 B line`.
    #[inline]
    pub fn mem_bw_per_core_mbps(&self, freq_hz: f64) -> f64 {
        let inst_per_s = self.ipc_base * freq_hz;
        inst_per_s * (self.llc_mpki / 1000.0) * 64.0 / 1e6
    }

    /// Application working set for a given input size, MB (excludes
    /// per-mapper buffers, which depend on the block size and are added by
    /// the executor).
    #[inline]
    pub fn working_set_mb(&self, size: InputSize) -> f64 {
        self.footprint_base_mb + self.working_set_frac * size.per_node_mb()
    }

    /// Total disk bytes a map task moves per MB of input (read + spilled
    /// output).
    #[inline]
    pub fn map_io_per_mb(&self) -> f64 {
        1.0 + self.map_selectivity * self.spill_factor
    }

    /// Sanity-check invariants; used by tests and the synthetic generator.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, bool); 9] = [
            ("map_cycles_per_mb > 0", self.map_cycles_per_mb > 0.0),
            (
                "task_overhead_cycles >= 0",
                self.task_overhead_cycles >= 0.0,
            ),
            (
                "map_selectivity in [0, 3]",
                (0.0..=3.0).contains(&self.map_selectivity),
            ),
            ("spill_factor >= 1", self.spill_factor >= 1.0),
            (
                "output_selectivity in [0, 3]",
                (0.0..=3.0).contains(&self.output_selectivity),
            ),
            (
                "llc_mpki in (0, 50]",
                self.llc_mpki > 0.0 && self.llc_mpki <= 50.0,
            ),
            (
                "ipc_base in (0, 4]",
                self.ipc_base > 0.0 && self.ipc_base <= 4.0,
            ),
            (
                "mem_stall_frac in [0, 1]",
                (0.0..=1.0).contains(&self.mem_stall_frac),
            ),
            (
                "working_set_frac in [0, 1]",
                (0.0..=1.0).contains(&self.working_set_frac),
            ),
        ];
        for (what, ok) in checks {
            if !ok {
                return Err(format!("{}: invariant violated: {what}", self.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppProfile {
        AppProfile {
            name: "sample",
            class: AppClass::C,
            map_cycles_per_mb: 100e6,
            task_overhead_cycles: 1e9,
            map_selectivity: 0.1,
            spill_factor: 1.0,
            reduce_cycles_per_mb: 50e6,
            output_selectivity: 0.05,
            job_overhead_s: 8.0,
            llc_mpki: 2.0,
            ipc_base: 1.0,
            mem_stall_frac: 0.2,
            icache_mpki: 3.0,
            branch_misp_pct: 2.0,
            working_set_frac: 0.05,
            footprint_base_mb: 300.0,
        }
    }

    #[test]
    fn bandwidth_demand_scales_with_frequency_and_mpki() {
        let p = sample();
        let low = p.mem_bw_per_core_mbps(1.2e9);
        let high = p.mem_bw_per_core_mbps(2.4e9);
        assert!((high / low - 2.0).abs() < 1e-9);
        let mut hot = p.clone();
        hot.llc_mpki = 4.0;
        assert!((hot.mem_bw_per_core_mbps(2.4e9) / high - 2.0).abs() < 1e-9);
        // 2 MPKI @ 1 IPC @ 2.4 GHz = 2.4e9 * 0.002 * 64 B ≈ 307 MB/s.
        assert!((high - 307.2).abs() < 1.0);
    }

    #[test]
    fn working_set_grows_with_input() {
        let p = sample();
        assert!(p.working_set_mb(InputSize::Large) > p.working_set_mb(InputSize::Small));
        let expected = 300.0 + 0.05 * 10240.0;
        assert!((p.working_set_mb(InputSize::Large) - expected).abs() < 1e-9);
    }

    #[test]
    fn io_per_mb_includes_spill() {
        let mut p = sample();
        p.map_selectivity = 1.0;
        p.spill_factor = 1.3;
        assert!((p.map_io_per_mb() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_sane_and_rejects_broken() {
        assert!(sample().validate().is_ok());
        let mut bad = sample();
        bad.ipc_base = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.spill_factor = 0.5;
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.mem_stall_frac = 1.5;
        assert!(bad.validate().is_err());
    }
}
