//! # ecost-apps — the ECoST application catalog
//!
//! The paper studies 11 Hadoop applications (§2.2): four micro-benchmarks —
//! WordCount (WC), Sort (ST), Grep (GP), TeraSort (TS) — and seven real-world
//! applications — Naïve Bayes (NB), FP-Growth (FP), Collaborative Filtering
//! (CF), SVM, PageRank (PR), Hidden Markov Model (HMM) and K-Means (KM).
//!
//! Since ECoST's controller only ever observes an application through its
//! hardware-counter/resource-utilisation signature, this crate substitutes
//! each real application with a **resource-demand profile**
//! ([`profile::AppProfile`]) calibrated so the application lands in the same
//! behaviour class (C/H/I/M) the paper assigns it and stresses the same
//! bottleneck with the same rough intensity.
//!
//! It also encodes the paper's three input scales (1/5/10 GB per node, §2.3),
//! the four behaviour classes (§3.2), the exact WS1–WS8 workload scenarios of
//! Table 3, and generators for synthetic per-class applications used in
//! robustness tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod class;
pub mod datasize;
pub mod profile;
pub mod synth;
pub mod workload;

pub use catalog::{App, TEST_APPS, TRAINING_APPS};
pub use class::AppClass;
pub use datasize::InputSize;
pub use profile::AppProfile;
pub use workload::{Workload, WorkloadScenario};
