//! Property-based tests of the AMVA solver and the hardware curves — the
//! invariants every downstream performance number silently relies on.

use ecost_sim::{amva, ClassDemand, NodeSpec};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = ClassDemand> {
    (1.0f64..8.0, 0.01f64..20.0, 0.0f64..10.0, 0.0f64..5.0).prop_map(|(n, z, d0, d1)| ClassDemand {
        population: n.floor(),
        think_time_s: z,
        demands_s: vec![d0, d1],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Throughput obeys both classical bounds: X ≤ N/(Z+ΣD) (no contention)
    /// and station utilisation never exceeds capacity.
    #[test]
    fn throughput_and_utilisation_bounds(classes in prop::collection::vec(arb_class(), 1..5)) {
        let sol = amva::solve(&classes, 2).expect("solvable");
        for (j, c) in classes.iter().enumerate() {
            let no_contention = c.population / (c.think_time_s + c.demands_s.iter().sum::<f64>());
            prop_assert!(sol.throughput[j] <= no_contention * (1.0 + 1e-6),
                "class {j}: X {} > bound {no_contention}", sol.throughput[j]);
            prop_assert!(sol.throughput[j] >= 0.0);
        }
        for u in &sol.station_util {
            prop_assert!((0.0..=1.0 + 1e-9).contains(u));
        }
    }

    /// Adding a competitor never speeds up an existing class.
    #[test]
    fn contention_is_monotone(a in arb_class(), b in arb_class()) {
        let alone = amva::solve(std::slice::from_ref(&a), 2).expect("solvable");
        let shared = amva::solve(&[a.clone(), b], 2).expect("solvable");
        prop_assert!(shared.throughput[0] <= alone.throughput[0] * (1.0 + 1e-6));
    }

    /// Queue lengths are non-negative and bounded by the population.
    #[test]
    fn queues_are_physical(classes in prop::collection::vec(arb_class(), 1..4)) {
        let sol = amva::solve(&classes, 2).expect("solvable");
        for (j, c) in classes.iter().enumerate() {
            let q_total: f64 = sol.queue[j].iter().sum();
            prop_assert!(q_total >= -1e-9);
            prop_assert!(q_total <= c.population * (1.0 + 1e-6),
                "class {j}: queue {q_total} > population {}", c.population);
        }
    }

    /// Scaling all times by a constant scales throughput inversely
    /// (the solver is unit-consistent).
    #[test]
    fn time_scale_invariance(c in arb_class(), k in 0.1f64..10.0) {
        let base = amva::solve(std::slice::from_ref(&c), 2).expect("solvable");
        let scaled_class = ClassDemand {
            population: c.population,
            think_time_s: c.think_time_s * k,
            demands_s: c.demands_s.iter().map(|d| d * k).collect(),
        };
        let scaled = amva::solve(&[scaled_class], 2).expect("solvable");
        let rel = (scaled.throughput[0] * k - base.throughput[0]).abs()
            / base.throughput[0].max(1e-12);
        prop_assert!(rel < 1e-4, "rel {rel}");
    }

    /// The disk curves are monotone in their arguments.
    #[test]
    fn disk_curves_monotone(k1 in 1.0f64..32.0, k2 in 1.0f64..32.0, e1 in 1.0f64..2048.0, e2 in 1.0f64..2048.0) {
        let disk = NodeSpec::atom_c2758().disk;
        let (klo, khi) = if k1 < k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(disk.aggregate_bw(khi) <= disk.aggregate_bw(klo) + 1e-9);
        let (elo, ehi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(disk.stream_rate(ehi) >= disk.stream_rate(elo) - 1e-9);
        prop_assert!(disk.stream_rate(ehi) <= disk.stream_cap_mbps);
    }
}
