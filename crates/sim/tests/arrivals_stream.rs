//! Chunked-vs-eager equivalence of the streaming trace generator.
//!
//! The fleet bench replays millions of arrivals by pulling the trace in
//! chunks instead of materializing it; these properties pin the contract
//! that chunking is invisible — any chunk size (1, 7, 4096, …), any seed,
//! any phase mix produces the byte-identical sequence the eager
//! `generate` path produces.

use ecost_sim::arrivals::{generate, ArrivalPhase, TraceArrival, TraceSpec, TraceStream};
use proptest::prelude::*;

/// Pull `count` arrivals through `next_chunk` windows of `chunk` each.
fn pull_chunked(spec: &TraceSpec, count: usize, chunk: usize) -> Vec<TraceArrival> {
    let mut st = TraceStream::new(spec).expect("valid spec");
    let mut buf = Vec::new();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let want = chunk.min(count - out.len());
        assert_eq!(st.next_chunk(&mut buf, want), want);
        out.extend_from_slice(&buf);
    }
    out
}

fn arb_spec() -> impl Strategy<Value = TraceSpec> {
    (
        0u64..u64::MAX,
        1usize..6,
        prop::collection::vec((1.0f64..600.0, 0.0f64..8.0), 1..4),
        0.5f64..2.5,
        (32.0f64..256.0, 1.0f64..8.0),
        1.1f64..2.5,
    )
        .prop_map(|(seed, apps, phases, zipf, (lo, hi_mult), alpha)| {
            let mut phases: Vec<ArrivalPhase> = phases
                .into_iter()
                .map(|(duration_s, rate_per_s)| ArrivalPhase {
                    duration_s,
                    rate_per_s,
                })
                .collect();
            // The spec requires at least one live phase; silent phases
            // elsewhere in the cycle stay covered.
            if !phases.iter().any(|p| p.rate_per_s > 0.0) {
                phases[0].rate_per_s = 1.0;
            }
            TraceSpec {
                seed,
                phases,
                apps,
                zipf_exponent: zipf,
                size_range_mb: (lo, lo * hi_mult),
                size_tail_alpha: alpha,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The issue's named chunk sizes: 1, 7 and 4096 all reproduce the
    /// eager sequence exactly, for arbitrary valid specs.
    #[test]
    fn chunked_pulls_match_eager(spec in arb_spec(), count in 1usize..700) {
        let eager = generate(&spec, count).expect("eager");
        for chunk in [1usize, 7, 4096] {
            let chunked = pull_chunked(&spec, count, chunk);
            prop_assert_eq!(&eager, &chunked, "chunk size {}", chunk);
        }
    }

    /// A single long-lived stream pulled in mixed, ragged chunk sizes is
    /// still the eager sequence — chunk boundaries carry no state.
    #[test]
    fn ragged_chunking_is_invisible(spec in arb_spec(), sizes in prop::collection::vec(1usize..97, 1..12)) {
        let count: usize = sizes.iter().sum();
        let eager = generate(&spec, count).expect("eager");
        let mut st = TraceStream::new(&spec).expect("stream");
        let mut buf = Vec::new();
        let mut out = Vec::with_capacity(count);
        for n in sizes {
            prop_assert_eq!(st.next_chunk(&mut buf, n), n);
            out.extend_from_slice(&buf);
        }
        prop_assert_eq!(eager, out);
    }
}
