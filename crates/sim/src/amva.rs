//! Approximate Mean Value Analysis (Bard–Schweitzer AMVA) for multiclass
//! closed queueing networks.
//!
//! ## Why a queueing model?
//!
//! A MapReduce job with `m` mapper slots is, at the node level, a *closed*
//! system: each slot repeatedly (1) reads a block from the shared disk, then
//! (2) computes on its private core. The slot count never changes during a
//! stage, so the right performance model is a closed network with `m`
//! customers per job:
//!
//! * the private cores form a **delay station** (no queueing — every slot owns
//!   a core), contributing the think time `Z`;
//! * the disk (and, cluster-wide, the NIC) is a **processor-sharing station**
//!   contested by *all* co-located jobs.
//!
//! This structure is what creates the paper's co-location headroom: a single
//! I/O-bound job with few slots leaves the disk idle while its slots compute
//! (`U_disk = X·D_disk < 1`), and a co-located job's requests soak up exactly
//! that idle time. AMVA gives us each job's steady-state task throughput under
//! contention in microseconds of compute, which is what lets the brute-force
//! oracle of the paper (84 480 runs) be swept in seconds.
//!
//! ## Algorithm
//!
//! Bard–Schweitzer fixed point: queue lengths seed residence times,
//! residence times give throughputs (Little's law on the full cycle),
//! throughputs refresh queue lengths; iterate with damping until the queue
//! estimate is stable. For a single class this is exact in the limit and
//! within a few percent of exact MVA for small populations — adequate here,
//! since model error is swamped by profile calibration error.

use crate::error::SimError;

/// Label for a shared processor-sharing station (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedStation {
    /// Human-readable name, e.g. `"disk"` or `"nic"`.
    pub name: &'static str,
}

/// Demand description of one customer class (= one co-located job).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDemand {
    /// Customer population `N_j` — the job's slot count. Fractional
    /// populations are allowed (used for tail-wave corrections).
    pub population: f64,
    /// Think time `Z_j` (seconds per cycle spent at the private cores).
    pub think_time_s: f64,
    /// Service demand at each shared station (seconds per cycle).
    pub demands_s: Vec<f64>,
}

impl ClassDemand {
    fn validate(&self, stations: usize) -> Result<(), SimError> {
        if !self.population.is_finite() || self.population < 0.0 {
            return Err(SimError::InvalidDemand(
                "population must be finite and >= 0",
            ));
        }
        if !self.think_time_s.is_finite() || self.think_time_s < 0.0 {
            return Err(SimError::InvalidDemand(
                "think time must be finite and >= 0",
            ));
        }
        if self.demands_s.len() != stations {
            return Err(SimError::InvalidDemand(
                "demand vector length != station count",
            ));
        }
        if self.demands_s.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(SimError::InvalidDemand(
                "station demand must be finite and >= 0",
            ));
        }
        if self.population > 0.0 {
            let total: f64 = self.think_time_s + self.demands_s.iter().sum::<f64>();
            if total <= 0.0 {
                return Err(SimError::InvalidDemand(
                    "class with customers needs positive total demand",
                ));
            }
        }
        Ok(())
    }
}

/// Converged AMVA solution.
#[derive(Debug, Clone)]
pub struct AmvaSolution {
    /// Per-class cycle throughput `X_j` (cycles/second).
    pub throughput: Vec<f64>,
    /// Per-class, per-station mean queue length `Q[j][s]`.
    pub queue: Vec<Vec<f64>>,
    /// Per-station utilisation `U_s = Σ_j X_j·D_{j,s}`, clamped to `[0, 1]`.
    pub station_util: Vec<f64>,
    /// Per-station *total* mean queue length (customers at or in service).
    pub station_queue: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl AmvaSolution {
    /// Mean number of class-`j` customers currently *thinking* (at their
    /// private cores) — by Little's law, `X_j · Z_j`.
    pub fn thinking(&self, class: usize, classes: &[ClassDemand]) -> f64 {
        self.throughput[class] * classes[class].think_time_s
    }
}

/// Convergence tolerance on queue lengths.
const TOL: f64 = 1e-7;
/// Iteration budget; typical problems converge in < 60 iterations.
const MAX_ITER: usize = 4000;
/// Damping factor for the queue update (guards oscillation at heavy load).
const DAMPING: f64 = 0.5;

/// Reusable solver state for the Bard–Schweitzer fixed point.
///
/// The executor calls AMVA inside a ~200-iteration outer fixed point on
/// *every* rate re-solve, so the solver must not touch the heap once warm.
/// All working vectors live here and are grown monotonically (`clear` +
/// `resize` keeps capacity, so after the first solve at a given problem
/// size every subsequent solve is allocation-free). [`solve`] is a thin
/// wrapper over this type, so both entry points share one arithmetic path
/// and produce bit-identical results.
#[derive(Debug, Default)]
pub struct AmvaScratch {
    /// Queue lengths, row-major: `q[j * stations + s]`.
    q: Vec<f64>,
    /// Per-class throughput.
    x: Vec<f64>,
    /// Per-class residence times (reused across classes within an iteration).
    r: Vec<f64>,
    /// Total queue per station.
    qtot: Vec<f64>,
    station_util: Vec<f64>,
    station_queue: Vec<f64>,
    nc: usize,
    stations: usize,
    iterations: usize,
}

impl AmvaScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> AmvaScratch {
        AmvaScratch::default()
    }

    /// Solve the network in place. Identical semantics (and bit-identical
    /// results) to [`solve`]; the converged state is read back through the
    /// accessors below.
    pub fn solve(&mut self, classes: &[ClassDemand], stations: usize) -> Result<(), SimError> {
        for c in classes {
            c.validate(stations)?;
        }
        let nc = classes.len();
        self.nc = nc;
        self.stations = stations;
        self.q.clear();
        self.q.resize(nc * stations, 0.0);
        self.x.clear();
        self.x.resize(nc, 0.0);
        self.r.clear();
        self.r.resize(stations, 0.0);
        self.qtot.clear();
        self.qtot.resize(stations, 0.0);
        let AmvaScratch { q, x, r, qtot, .. } = self;

        // Seed: spread each population across stations + think.
        for (j, c) in classes.iter().enumerate() {
            if c.population <= 0.0 {
                continue;
            }
            let share = c.population / (stations as f64 + 1.0);
            for (qv, d) in q[j * stations..(j + 1) * stations]
                .iter_mut()
                .zip(&c.demands_s)
            {
                *qv = if *d > 0.0 { share } else { 0.0 };
            }
        }

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        // Hot loop: row slices are hoisted out of the station loops so the
        // indexing below is bounds-checked once per class, not once per
        // access. Every floating-point operation and its order is unchanged
        // (the executor's bit-identity property tests pin this).
        for it in 0..MAX_ITER {
            iterations = it + 1;
            // Total queue per station.
            for v in qtot.iter_mut() {
                *v = 0.0;
            }
            for row in q.chunks_exact(stations.max(1)) {
                for (qt, v) in qtot.iter_mut().zip(row) {
                    *qt += v;
                }
            }
            residual = 0.0;
            for (j, c) in classes.iter().enumerate() {
                if c.population <= 0.0 {
                    x[j] = 0.0;
                    continue;
                }
                let n = c.population;
                let qrow = &mut q[j * stations..(j + 1) * stations];
                let demands = &c.demands_s[..stations];
                let mut r_total = 0.0;
                for v in r.iter_mut() {
                    *v = 0.0;
                }
                for s in 0..stations {
                    let d = demands[s];
                    if d <= 0.0 {
                        continue;
                    }
                    // Bard–Schweitzer: a class-j arrival sees the other
                    // classes' full queues plus (N_j-1)/N_j of its own.
                    let others = qtot[s] - qrow[s];
                    let own = if n > 1.0 {
                        qrow[s] * (n - 1.0) / n
                    } else {
                        0.0
                    };
                    r[s] = d * (1.0 + others + own);
                    r_total += r[s];
                }
                let xj = n / (c.think_time_s + r_total);
                x[j] = xj;
                for s in 0..stations {
                    let new_q = xj * r[s];
                    let delta = new_q - qrow[s];
                    residual = residual.max(delta.abs());
                    qrow[s] += DAMPING * delta;
                }
            }
            if residual < TOL {
                break;
            }
        }
        self.iterations = iterations;
        if residual >= TOL * 10.0 && residual.is_finite() && residual > 1e-3 {
            return Err(SimError::NoConvergence {
                iterations,
                residual,
            });
        }

        self.station_util.clear();
        self.station_util.resize(stations, 0.0);
        self.station_queue.clear();
        self.station_queue.resize(stations, 0.0);
        for (j, c) in classes.iter().enumerate() {
            for s in 0..stations {
                self.station_util[s] += self.x[j] * c.demands_s[s];
                self.station_queue[s] += self.q[j * stations + s];
            }
        }
        for u in &mut self.station_util {
            *u = u.clamp(0.0, 1.0);
        }
        Ok(())
    }

    /// Per-class cycle throughput `X_j` from the last solve.
    pub fn throughput(&self) -> &[f64] {
        &self.x[..self.nc]
    }

    /// Mean queue length of class `j` at station `s` from the last solve.
    pub fn queue(&self, class: usize, station: usize) -> f64 {
        self.q[class * self.stations + station]
    }

    /// Per-station utilisation (clamped to `[0, 1]`) from the last solve.
    pub fn station_util(&self) -> &[f64] {
        &self.station_util[..self.stations]
    }

    /// Per-station total mean queue length from the last solve.
    pub fn station_queue(&self) -> &[f64] {
        &self.station_queue[..self.stations]
    }

    /// Fixed-point iterations used by the last solve.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Materialise the last solve as an owned [`AmvaSolution`].
    fn to_solution(&self) -> AmvaSolution {
        let queue = if self.stations == 0 {
            vec![Vec::new(); self.nc]
        } else {
            self.q[..self.nc * self.stations]
                .chunks(self.stations)
                .map(|c| c.to_vec())
                .collect()
        };
        AmvaSolution {
            throughput: self.x[..self.nc].to_vec(),
            queue,
            station_util: self.station_util[..self.stations].to_vec(),
            station_queue: self.station_queue[..self.stations].to_vec(),
            iterations: self.iterations,
        }
    }
}

/// Solve the network. `stations` is the number of shared PS stations; every
/// class must provide exactly that many demands.
///
/// Classes with zero population are carried through with zero throughput.
///
/// ```
/// use ecost_sim::amva::{solve, ClassDemand};
///
/// // One job with 2 slots: each cycle computes 3 s then reads 1 s of disk.
/// let job = ClassDemand {
///     population: 2.0,
///     think_time_s: 3.0,
///     demands_s: vec![1.0],
/// };
/// let sol = solve(&[job], 1).unwrap();
/// // Nearly two tasks per 4 s-cycle; the disk is mostly idle (≈ fill-in
/// // headroom for a co-located job).
/// assert!(sol.throughput[0] > 0.45 && sol.throughput[0] < 0.5);
/// assert!(sol.station_util[0] < 0.5);
/// ```
pub fn solve(classes: &[ClassDemand], stations: usize) -> Result<AmvaSolution, SimError> {
    let mut scratch = AmvaScratch::new();
    scratch.solve(classes, stations)?;
    Ok(scratch.to_solution())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact single-class MVA for validation.
    fn exact_mva_single(n: usize, z: f64, d: f64) -> f64 {
        let mut q = 0.0;
        let mut x = 0.0;
        for k in 1..=n {
            let r = d * (1.0 + q);
            x = k as f64 / (z + r);
            q = x * r;
        }
        x
    }

    #[test]
    fn matches_exact_mva_single_class() {
        for &n in &[1usize, 2, 4, 8] {
            for &(z, d) in &[(1.0, 1.0), (3.0, 0.5), (0.5, 2.0)] {
                let sol = solve(
                    &[ClassDemand {
                        population: n as f64,
                        think_time_s: z,
                        demands_s: vec![d],
                    }],
                    1,
                )
                .unwrap();
                let exact = exact_mva_single(n, z, d);
                let rel = (sol.throughput[0] - exact).abs() / exact;
                assert!(
                    rel < 0.08,
                    "n={n} z={z} d={d}: amva={} exact={exact}",
                    sol.throughput[0]
                );
            }
        }
    }

    #[test]
    fn n1_is_exact() {
        let sol = solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 2.0,
                demands_s: vec![3.0],
            }],
            1,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.0 / 5.0).abs() < 1e-6);
        // Disk utilisation = X·D = 0.6: the single customer leaves the disk
        // idle 40% of the time — the co-location headroom.
        assert!((sol.station_util[0] - 0.6).abs() < 1e-5);
    }

    #[test]
    fn symmetric_classes_share_equally() {
        let c = ClassDemand {
            population: 2.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let sol = solve(&[c.clone(), c], 1).unwrap();
        assert!((sol.throughput[0] - sol.throughput[1]).abs() < 1e-6);
        assert!(sol.station_util[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn colocation_fills_idle_disk_time() {
        // One I/O-ish job: Z = 1, D_disk = 1, one slot → util 0.5.
        let one = ClassDemand {
            population: 1.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let alone = solve(std::slice::from_ref(&one), 1).unwrap();
        let pair = solve(&[one.clone(), one], 1).unwrap();
        // Per-job throughput drops under sharing, but far less than 2×:
        // the pair's combined throughput exceeds the standalone throughput.
        let x_alone = alone.throughput[0];
        let x_pair = pair.throughput[0];
        assert!(x_pair < x_alone);
        assert!(
            2.0 * x_pair > 1.3 * x_alone,
            "x_pair={x_pair} x_alone={x_alone}"
        );
        assert!(pair.station_util[0] > alone.station_util[0]);
    }

    #[test]
    fn zero_population_class_is_inert() {
        let busy = ClassDemand {
            population: 4.0,
            think_time_s: 1.0,
            demands_s: vec![0.5],
        };
        let idle = ClassDemand {
            population: 0.0,
            think_time_s: 0.0,
            demands_s: vec![0.0],
        };
        let with_idle = solve(&[busy.clone(), idle], 1).unwrap();
        let alone = solve(&[busy], 1).unwrap();
        assert!((with_idle.throughput[0] - alone.throughput[0]).abs() < 1e-9);
        assert_eq!(with_idle.throughput[1], 0.0);
    }

    #[test]
    fn throughput_bounded_by_capacity_and_population() {
        let sol = solve(
            &[ClassDemand {
                population: 8.0,
                think_time_s: 0.1,
                demands_s: vec![1.0],
            }],
            1,
        )
        .unwrap();
        // Capacity bound: X ≤ 1/D.
        assert!(sol.throughput[0] <= 1.0 / 1.0 + 1e-6);
        // Heavy load should approach the capacity bound.
        assert!(sol.throughput[0] > 0.9);
    }

    #[test]
    fn pure_delay_class() {
        // No shared demand: X = N/Z exactly.
        let sol = solve(
            &[ClassDemand {
                population: 3.0,
                think_time_s: 2.0,
                demands_s: vec![0.0, 0.0],
            }],
            2,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve(
            &[ClassDemand {
                population: -1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 0.0,
                demands_s: vec![0.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0, 1.0],
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_problem_sizes() {
        // One scratch solving a 2-class problem, then a 1-class problem,
        // then the 2-class problem again must agree to the bit with fresh
        // solves: clear+resize reuse may never leak state between solves.
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let mut scratch = AmvaScratch::new();
        for classes in [vec![a.clone(), b.clone()], vec![b.clone()], vec![a, b]] {
            let stations = classes[0].demands_s.len();
            scratch.solve(&classes, stations).unwrap();
            let fresh = solve(&classes, stations).unwrap();
            assert_eq!(scratch.iterations(), fresh.iterations);
            for j in 0..classes.len() {
                assert_eq!(
                    scratch.throughput()[j].to_bits(),
                    fresh.throughput[j].to_bits()
                );
                for s in 0..stations {
                    assert_eq!(scratch.queue(j, s).to_bits(), fresh.queue[j][s].to_bits());
                }
            }
            for s in 0..stations {
                assert_eq!(
                    scratch.station_util()[s].to_bits(),
                    fresh.station_util[s].to_bits()
                );
                assert_eq!(
                    scratch.station_queue()[s].to_bits(),
                    fresh.station_queue[s].to_bits()
                );
            }
        }
    }

    #[test]
    fn two_stations_multiclass_utilisation_valid() {
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let sol = solve(&[a, b], 2).unwrap();
        for u in &sol.station_util {
            assert!(*u >= 0.0 && *u <= 1.0 + 1e-9);
        }
        assert!(sol.throughput.iter().all(|x| *x > 0.0));
    }
}
