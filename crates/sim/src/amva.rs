//! Approximate Mean Value Analysis (Bard–Schweitzer AMVA) for multiclass
//! closed queueing networks.
//!
//! ## Why a queueing model?
//!
//! A MapReduce job with `m` mapper slots is, at the node level, a *closed*
//! system: each slot repeatedly (1) reads a block from the shared disk, then
//! (2) computes on its private core. The slot count never changes during a
//! stage, so the right performance model is a closed network with `m`
//! customers per job:
//!
//! * the private cores form a **delay station** (no queueing — every slot owns
//!   a core), contributing the think time `Z`;
//! * the disk (and, cluster-wide, the NIC) is a **processor-sharing station**
//!   contested by *all* co-located jobs.
//!
//! This structure is what creates the paper's co-location headroom: a single
//! I/O-bound job with few slots leaves the disk idle while its slots compute
//! (`U_disk = X·D_disk < 1`), and a co-located job's requests soak up exactly
//! that idle time. AMVA gives us each job's steady-state task throughput under
//! contention in microseconds of compute, which is what lets the brute-force
//! oracle of the paper (84 480 runs) be swept in seconds.
//!
//! ## Algorithm
//!
//! Bard–Schweitzer fixed point: queue lengths seed residence times,
//! residence times give throughputs (Little's law on the full cycle),
//! throughputs refresh queue lengths; iterate with damping until the queue
//! estimate is stable. For a single class this is exact in the limit and
//! within a few percent of exact MVA for small populations — adequate here,
//! since model error is swamped by profile calibration error.

use crate::error::SimError;

/// Label for a shared processor-sharing station (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedStation {
    /// Human-readable name, e.g. `"disk"` or `"nic"`.
    pub name: &'static str,
}

/// Demand description of one customer class (= one co-located job).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDemand {
    /// Customer population `N_j` — the job's slot count. Fractional
    /// populations are allowed (used for tail-wave corrections).
    pub population: f64,
    /// Think time `Z_j` (seconds per cycle spent at the private cores).
    pub think_time_s: f64,
    /// Service demand at each shared station (seconds per cycle).
    pub demands_s: Vec<f64>,
}

impl ClassDemand {
    fn validate(&self, stations: usize) -> Result<(), SimError> {
        if !self.population.is_finite() || self.population < 0.0 {
            return Err(SimError::InvalidDemand(
                "population must be finite and >= 0",
            ));
        }
        if !self.think_time_s.is_finite() || self.think_time_s < 0.0 {
            return Err(SimError::InvalidDemand(
                "think time must be finite and >= 0",
            ));
        }
        if self.demands_s.len() != stations {
            return Err(SimError::InvalidDemand(
                "demand vector length != station count",
            ));
        }
        if self.demands_s.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(SimError::InvalidDemand(
                "station demand must be finite and >= 0",
            ));
        }
        if self.population > 0.0 {
            let total: f64 = self.think_time_s + self.demands_s.iter().sum::<f64>();
            if total <= 0.0 {
                return Err(SimError::InvalidDemand(
                    "class with customers needs positive total demand",
                ));
            }
        }
        Ok(())
    }
}

/// Converged AMVA solution.
#[derive(Debug, Clone)]
pub struct AmvaSolution {
    /// Per-class cycle throughput `X_j` (cycles/second).
    pub throughput: Vec<f64>,
    /// Per-class, per-station mean queue length `Q[j][s]`.
    pub queue: Vec<Vec<f64>>,
    /// Per-station utilisation `U_s = Σ_j X_j·D_{j,s}`, clamped to `[0, 1]`.
    pub station_util: Vec<f64>,
    /// Per-station *total* mean queue length (customers at or in service).
    pub station_queue: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl AmvaSolution {
    /// Mean number of class-`j` customers currently *thinking* (at their
    /// private cores) — by Little's law, `X_j · Z_j`.
    pub fn thinking(&self, class: usize, classes: &[ClassDemand]) -> f64 {
        self.throughput[class] * classes[class].think_time_s
    }
}

/// Convergence tolerance on queue lengths.
const TOL: f64 = 1e-7;
/// Iteration budget; typical problems converge in < 60 iterations.
const MAX_ITER: usize = 4000;
/// Damping factor for the queue update (guards oscillation at heavy load).
const DAMPING: f64 = 0.5;

/// Solve the network. `stations` is the number of shared PS stations; every
/// class must provide exactly that many demands.
///
/// Classes with zero population are carried through with zero throughput.
///
/// ```
/// use ecost_sim::amva::{solve, ClassDemand};
///
/// // One job with 2 slots: each cycle computes 3 s then reads 1 s of disk.
/// let job = ClassDemand {
///     population: 2.0,
///     think_time_s: 3.0,
///     demands_s: vec![1.0],
/// };
/// let sol = solve(&[job], 1).unwrap();
/// // Nearly two tasks per 4 s-cycle; the disk is mostly idle (≈ fill-in
/// // headroom for a co-located job).
/// assert!(sol.throughput[0] > 0.45 && sol.throughput[0] < 0.5);
/// assert!(sol.station_util[0] < 0.5);
/// ```
pub fn solve(classes: &[ClassDemand], stations: usize) -> Result<AmvaSolution, SimError> {
    for c in classes {
        c.validate(stations)?;
    }
    let nc = classes.len();
    let mut q = vec![vec![0.0_f64; stations]; nc];
    // Seed: spread each population across stations + think.
    for (j, c) in classes.iter().enumerate() {
        if c.population <= 0.0 {
            continue;
        }
        let share = c.population / (stations as f64 + 1.0);
        for (qv, d) in q[j].iter_mut().zip(&c.demands_s) {
            *qv = if *d > 0.0 { share } else { 0.0 };
        }
    }

    let mut x = vec![0.0_f64; nc];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    for it in 0..MAX_ITER {
        iterations = it + 1;
        // Total queue per station.
        let mut qtot = vec![0.0_f64; stations];
        for row in &q {
            for (s, v) in row.iter().enumerate() {
                qtot[s] += v;
            }
        }
        residual = 0.0;
        for (j, c) in classes.iter().enumerate() {
            if c.population <= 0.0 {
                x[j] = 0.0;
                continue;
            }
            let n = c.population;
            let mut r_total = 0.0;
            let mut r = vec![0.0_f64; stations];
            for s in 0..stations {
                let d = c.demands_s[s];
                if d <= 0.0 {
                    continue;
                }
                // Bard–Schweitzer: a class-j arrival sees the other classes'
                // full queues plus (N_j-1)/N_j of its own.
                let others = qtot[s] - q[j][s];
                let own = if n > 1.0 {
                    q[j][s] * (n - 1.0) / n
                } else {
                    0.0
                };
                r[s] = d * (1.0 + others + own);
                r_total += r[s];
            }
            let xj = n / (c.think_time_s + r_total);
            x[j] = xj;
            for s in 0..stations {
                let new_q = xj * r[s];
                let delta = new_q - q[j][s];
                residual = residual.max(delta.abs());
                q[j][s] += DAMPING * delta;
            }
        }
        if residual < TOL {
            break;
        }
    }
    if residual >= TOL * 10.0 && residual.is_finite() && residual > 1e-3 {
        return Err(SimError::NoConvergence {
            iterations,
            residual,
        });
    }

    let mut station_util = vec![0.0_f64; stations];
    let mut station_queue = vec![0.0_f64; stations];
    for (j, c) in classes.iter().enumerate() {
        for s in 0..stations {
            station_util[s] += x[j] * c.demands_s[s];
            station_queue[s] += q[j][s];
        }
    }
    for u in &mut station_util {
        *u = u.clamp(0.0, 1.0);
    }

    Ok(AmvaSolution {
        throughput: x,
        queue: q,
        station_util,
        station_queue,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact single-class MVA for validation.
    fn exact_mva_single(n: usize, z: f64, d: f64) -> f64 {
        let mut q = 0.0;
        let mut x = 0.0;
        for k in 1..=n {
            let r = d * (1.0 + q);
            x = k as f64 / (z + r);
            q = x * r;
        }
        x
    }

    #[test]
    fn matches_exact_mva_single_class() {
        for &n in &[1usize, 2, 4, 8] {
            for &(z, d) in &[(1.0, 1.0), (3.0, 0.5), (0.5, 2.0)] {
                let sol = solve(
                    &[ClassDemand {
                        population: n as f64,
                        think_time_s: z,
                        demands_s: vec![d],
                    }],
                    1,
                )
                .unwrap();
                let exact = exact_mva_single(n, z, d);
                let rel = (sol.throughput[0] - exact).abs() / exact;
                assert!(
                    rel < 0.08,
                    "n={n} z={z} d={d}: amva={} exact={exact}",
                    sol.throughput[0]
                );
            }
        }
    }

    #[test]
    fn n1_is_exact() {
        let sol = solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 2.0,
                demands_s: vec![3.0],
            }],
            1,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.0 / 5.0).abs() < 1e-6);
        // Disk utilisation = X·D = 0.6: the single customer leaves the disk
        // idle 40% of the time — the co-location headroom.
        assert!((sol.station_util[0] - 0.6).abs() < 1e-5);
    }

    #[test]
    fn symmetric_classes_share_equally() {
        let c = ClassDemand {
            population: 2.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let sol = solve(&[c.clone(), c], 1).unwrap();
        assert!((sol.throughput[0] - sol.throughput[1]).abs() < 1e-6);
        assert!(sol.station_util[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn colocation_fills_idle_disk_time() {
        // One I/O-ish job: Z = 1, D_disk = 1, one slot → util 0.5.
        let one = ClassDemand {
            population: 1.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let alone = solve(std::slice::from_ref(&one), 1).unwrap();
        let pair = solve(&[one.clone(), one], 1).unwrap();
        // Per-job throughput drops under sharing, but far less than 2×:
        // the pair's combined throughput exceeds the standalone throughput.
        let x_alone = alone.throughput[0];
        let x_pair = pair.throughput[0];
        assert!(x_pair < x_alone);
        assert!(
            2.0 * x_pair > 1.3 * x_alone,
            "x_pair={x_pair} x_alone={x_alone}"
        );
        assert!(pair.station_util[0] > alone.station_util[0]);
    }

    #[test]
    fn zero_population_class_is_inert() {
        let busy = ClassDemand {
            population: 4.0,
            think_time_s: 1.0,
            demands_s: vec![0.5],
        };
        let idle = ClassDemand {
            population: 0.0,
            think_time_s: 0.0,
            demands_s: vec![0.0],
        };
        let with_idle = solve(&[busy.clone(), idle], 1).unwrap();
        let alone = solve(&[busy], 1).unwrap();
        assert!((with_idle.throughput[0] - alone.throughput[0]).abs() < 1e-9);
        assert_eq!(with_idle.throughput[1], 0.0);
    }

    #[test]
    fn throughput_bounded_by_capacity_and_population() {
        let sol = solve(
            &[ClassDemand {
                population: 8.0,
                think_time_s: 0.1,
                demands_s: vec![1.0],
            }],
            1,
        )
        .unwrap();
        // Capacity bound: X ≤ 1/D.
        assert!(sol.throughput[0] <= 1.0 / 1.0 + 1e-6);
        // Heavy load should approach the capacity bound.
        assert!(sol.throughput[0] > 0.9);
    }

    #[test]
    fn pure_delay_class() {
        // No shared demand: X = N/Z exactly.
        let sol = solve(
            &[ClassDemand {
                population: 3.0,
                think_time_s: 2.0,
                demands_s: vec![0.0, 0.0],
            }],
            2,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve(
            &[ClassDemand {
                population: -1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 0.0,
                demands_s: vec![0.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0, 1.0],
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn two_stations_multiclass_utilisation_valid() {
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let sol = solve(&[a, b], 2).unwrap();
        for u in &sol.station_util {
            assert!(*u >= 0.0 && *u <= 1.0 + 1e-9);
        }
        assert!(sol.throughput.iter().all(|x| *x > 0.0));
    }
}
