//! Approximate Mean Value Analysis (Bard–Schweitzer AMVA) for multiclass
//! closed queueing networks.
//!
//! ## Why a queueing model?
//!
//! A MapReduce job with `m` mapper slots is, at the node level, a *closed*
//! system: each slot repeatedly (1) reads a block from the shared disk, then
//! (2) computes on its private core. The slot count never changes during a
//! stage, so the right performance model is a closed network with `m`
//! customers per job:
//!
//! * the private cores form a **delay station** (no queueing — every slot owns
//!   a core), contributing the think time `Z`;
//! * the disk (and, cluster-wide, the NIC) is a **processor-sharing station**
//!   contested by *all* co-located jobs.
//!
//! This structure is what creates the paper's co-location headroom: a single
//! I/O-bound job with few slots leaves the disk idle while its slots compute
//! (`U_disk = X·D_disk < 1`), and a co-located job's requests soak up exactly
//! that idle time. AMVA gives us each job's steady-state task throughput under
//! contention in microseconds of compute, which is what lets the brute-force
//! oracle of the paper (84 480 runs) be swept in seconds.
//!
//! ## Algorithm
//!
//! Bard–Schweitzer fixed point: queue lengths seed residence times,
//! residence times give throughputs (Little's law on the full cycle),
//! throughputs refresh queue lengths; iterate with damping until the queue
//! estimate is stable. For a single class this is exact in the limit and
//! within a few percent of exact MVA for small populations — adequate here,
//! since model error is swamped by profile calibration error.

use crate::error::SimError;

/// Label for a shared processor-sharing station (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedStation {
    /// Human-readable name, e.g. `"disk"` or `"nic"`.
    pub name: &'static str,
}

/// Demand description of one customer class (= one co-located job).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDemand {
    /// Customer population `N_j` — the job's slot count. Fractional
    /// populations are allowed (used for tail-wave corrections).
    pub population: f64,
    /// Think time `Z_j` (seconds per cycle spent at the private cores).
    pub think_time_s: f64,
    /// Service demand at each shared station (seconds per cycle).
    pub demands_s: Vec<f64>,
}

impl ClassDemand {
    fn validate(&self, stations: usize) -> Result<(), SimError> {
        if !self.population.is_finite() || self.population < 0.0 {
            return Err(SimError::InvalidDemand(
                "population must be finite and >= 0",
            ));
        }
        if !self.think_time_s.is_finite() || self.think_time_s < 0.0 {
            return Err(SimError::InvalidDemand(
                "think time must be finite and >= 0",
            ));
        }
        if self.demands_s.len() != stations {
            return Err(SimError::InvalidDemand(
                "demand vector length != station count",
            ));
        }
        if self.demands_s.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(SimError::InvalidDemand(
                "station demand must be finite and >= 0",
            ));
        }
        if self.population > 0.0 {
            let total: f64 = self.think_time_s + self.demands_s.iter().sum::<f64>();
            if total <= 0.0 {
                return Err(SimError::InvalidDemand(
                    "class with customers needs positive total demand",
                ));
            }
        }
        Ok(())
    }
}

/// Converged AMVA solution.
#[derive(Debug, Clone)]
pub struct AmvaSolution {
    /// Per-class cycle throughput `X_j` (cycles/second).
    pub throughput: Vec<f64>,
    /// Per-class, per-station mean queue length `Q[j][s]`.
    pub queue: Vec<Vec<f64>>,
    /// Per-station utilisation `U_s = Σ_j X_j·D_{j,s}`, clamped to `[0, 1]`.
    pub station_util: Vec<f64>,
    /// Per-station *total* mean queue length (customers at or in service).
    pub station_queue: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl AmvaSolution {
    /// Mean number of class-`j` customers currently *thinking* (at their
    /// private cores) — by Little's law, `X_j · Z_j`.
    pub fn thinking(&self, class: usize, classes: &[ClassDemand]) -> f64 {
        self.throughput[class] * classes[class].think_time_s
    }
}

/// Convergence tolerance on queue lengths.
const TOL: f64 = 1e-7;
/// Iteration budget; typical problems converge in < 60 iterations.
const MAX_ITER: usize = 4000;
/// Damping factor for the queue update (guards oscillation at heavy load).
const DAMPING: f64 = 0.5;

/// Reusable solver state for the Bard–Schweitzer fixed point.
///
/// The executor calls AMVA inside a ~200-iteration outer fixed point on
/// *every* rate re-solve, so the solver must not touch the heap once warm.
/// All working vectors live here and are grown monotonically (`clear` +
/// `resize` keeps capacity, so after the first solve at a given problem
/// size every subsequent solve is allocation-free). [`solve`] is a thin
/// wrapper over this type, so both entry points share one arithmetic path
/// and produce bit-identical results.
#[derive(Debug, Default)]
pub struct AmvaScratch {
    /// Queue lengths, row-major: `q[j * stations + s]`.
    q: Vec<f64>,
    /// Per-class throughput.
    x: Vec<f64>,
    /// Per-class residence times (reused across classes within an iteration).
    r: Vec<f64>,
    /// Total queue per station.
    qtot: Vec<f64>,
    station_util: Vec<f64>,
    station_queue: Vec<f64>,
    nc: usize,
    stations: usize,
    iterations: usize,
}

impl AmvaScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> AmvaScratch {
        AmvaScratch::default()
    }

    /// Solve the network in place. Identical semantics (and bit-identical
    /// results) to [`solve`]; the converged state is read back through the
    /// accessors below.
    ///
    /// The fixed point is decomposed into [`Self::begin`] (validate + seed),
    /// [`Self::iterate`] (one Bard–Schweitzer step) and [`Self::finish`]
    /// (derived per-station figures) so [`AmvaBatch`] can drive the *exact*
    /// same arithmetic lockstep across independent lanes.
    pub fn solve(&mut self, classes: &[ClassDemand], stations: usize) -> Result<(), SimError> {
        self.begin(classes, stations)?;
        let mut residual = f64::INFINITY;
        for _ in 0..MAX_ITER {
            residual = self.iterate(classes);
            if residual < TOL {
                break;
            }
        }
        self.convergence_err(residual)?;
        self.finish(classes);
        Ok(())
    }

    /// Validate the problem, size the buffers and seed the fixed point.
    fn begin(&mut self, classes: &[ClassDemand], stations: usize) -> Result<(), SimError> {
        for c in classes {
            c.validate(stations)?;
        }
        let nc = classes.len();
        self.nc = nc;
        self.stations = stations;
        self.q.clear();
        self.q.resize(nc * stations, 0.0);
        self.x.clear();
        self.x.resize(nc, 0.0);
        self.r.clear();
        self.r.resize(stations, 0.0);
        self.qtot.clear();
        self.qtot.resize(stations, 0.0);
        self.iterations = 0;

        // Seed: spread each population across stations + think.
        for (j, c) in classes.iter().enumerate() {
            if c.population <= 0.0 {
                continue;
            }
            let share = c.population / (stations as f64 + 1.0);
            for (qv, d) in self.q[j * stations..(j + 1) * stations]
                .iter_mut()
                .zip(&c.demands_s)
            {
                *qv = if *d > 0.0 { share } else { 0.0 };
            }
        }
        Ok(())
    }

    /// One Bard–Schweitzer iteration; returns the residual (max queue
    /// delta). Hot loop: row slices are hoisted out of the station loops so
    /// the indexing below is bounds-checked once per class, not once per
    /// access. Every floating-point operation and its order is unchanged
    /// from the pre-split implementation (the executor's bit-identity
    /// property tests pin this).
    #[inline]
    fn iterate(&mut self, classes: &[ClassDemand]) -> f64 {
        self.iterations += 1;
        let stations = self.stations;
        let AmvaScratch { q, x, r, qtot, .. } = self;
        // Total queue per station.
        for v in qtot.iter_mut() {
            *v = 0.0;
        }
        for row in q.chunks_exact(stations.max(1)) {
            for (qt, v) in qtot.iter_mut().zip(row) {
                *qt += v;
            }
        }
        let mut residual = 0.0_f64;
        for (j, c) in classes.iter().enumerate() {
            if c.population <= 0.0 {
                x[j] = 0.0;
                continue;
            }
            let n = c.population;
            let qrow = &mut q[j * stations..(j + 1) * stations];
            let demands = &c.demands_s[..stations];
            let mut r_total = 0.0;
            for v in r.iter_mut() {
                *v = 0.0;
            }
            for s in 0..stations {
                let d = demands[s];
                if d <= 0.0 {
                    continue;
                }
                // Bard–Schweitzer: a class-j arrival sees the other
                // classes' full queues plus (N_j-1)/N_j of its own.
                let others = qtot[s] - qrow[s];
                let own = if n > 1.0 {
                    qrow[s] * (n - 1.0) / n
                } else {
                    0.0
                };
                r[s] = d * (1.0 + others + own);
                r_total += r[s];
            }
            let xj = n / (c.think_time_s + r_total);
            x[j] = xj;
            for s in 0..stations {
                let new_q = xj * r[s];
                let delta = new_q - qrow[s];
                residual = residual.max(delta.abs());
                qrow[s] += DAMPING * delta;
            }
        }
        residual
    }

    /// The scalar loop's post-exit convergence test, verbatim.
    fn convergence_err(&self, residual: f64) -> Result<(), SimError> {
        if residual >= TOL * 10.0 && residual.is_finite() && residual > 1e-3 {
            return Err(SimError::NoConvergence {
                iterations: self.iterations,
                residual,
            });
        }
        Ok(())
    }

    /// Derive the per-station utilisation/queue figures from the converged
    /// fixed point.
    fn finish(&mut self, classes: &[ClassDemand]) {
        let stations = self.stations;
        self.station_util.clear();
        self.station_util.resize(stations, 0.0);
        self.station_queue.clear();
        self.station_queue.resize(stations, 0.0);
        for (j, c) in classes.iter().enumerate() {
            for s in 0..stations {
                self.station_util[s] += self.x[j] * c.demands_s[s];
                self.station_queue[s] += self.q[j * stations + s];
            }
        }
        for u in &mut self.station_util {
            *u = u.clamp(0.0, 1.0);
        }
    }

    /// Per-class cycle throughput `X_j` from the last solve.
    pub fn throughput(&self) -> &[f64] {
        &self.x[..self.nc]
    }

    /// Mean queue length of class `j` at station `s` from the last solve.
    pub fn queue(&self, class: usize, station: usize) -> f64 {
        self.q[class * self.stations + station]
    }

    /// Per-station utilisation (clamped to `[0, 1]`) from the last solve.
    pub fn station_util(&self) -> &[f64] {
        &self.station_util[..self.stations]
    }

    /// Per-station total mean queue length from the last solve.
    pub fn station_queue(&self) -> &[f64] {
        &self.station_queue[..self.stations]
    }

    /// Fixed-point iterations used by the last solve.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Materialise the last solve as an owned [`AmvaSolution`].
    fn to_solution(&self) -> AmvaSolution {
        let queue = if self.stations == 0 {
            vec![Vec::new(); self.nc]
        } else {
            self.q[..self.nc * self.stations]
                .chunks(self.stations)
                .map(|c| c.to_vec())
                .collect()
        };
        AmvaSolution {
            throughput: self.x[..self.nc].to_vec(),
            queue,
            station_util: self.station_util[..self.stations].to_vec(),
            station_queue: self.station_queue[..self.stations].to_vec(),
            iterations: self.iterations,
        }
    }
}

/// Solve the network. `stations` is the number of shared PS stations; every
/// class must provide exactly that many demands.
///
/// Classes with zero population are carried through with zero throughput.
///
/// ```
/// use ecost_sim::amva::{solve, ClassDemand};
///
/// // One job with 2 slots: each cycle computes 3 s then reads 1 s of disk.
/// let job = ClassDemand {
///     population: 2.0,
///     think_time_s: 3.0,
///     demands_s: vec![1.0],
/// };
/// let sol = solve(&[job], 1).unwrap();
/// // Nearly two tasks per 4 s-cycle; the disk is mostly idle (≈ fill-in
/// // headroom for a co-located job).
/// assert!(sol.throughput[0] > 0.45 && sol.throughput[0] < 0.5);
/// assert!(sol.station_util[0] < 0.5);
/// ```
pub fn solve(classes: &[ClassDemand], stations: usize) -> Result<AmvaSolution, SimError> {
    let mut scratch = AmvaScratch::new();
    scratch.solve(classes, stations)?;
    Ok(scratch.to_solution())
}

/// Lane-interleaved batch of *independent* AMVA solves.
///
/// `K` unrelated fixed points advance in lockstep: each global round runs
/// one Bard–Schweitzer iteration in every still-unconverged lane. A lane's
/// loop-carried dependency — next iteration's queues feed on this one's —
/// is what caps the scalar solver (DESIGN.md §11: a dependent divide chain),
/// but *across* lanes the rounds are independent, so interleaving them lets
/// out-of-order execution overlap the chains.
///
/// Each lane runs the exact scalar [`AmvaScratch::solve`] sequence: same
/// seed, same per-iteration arithmetic order, same damping, same
/// convergence test and iteration count. Converged (or failed) lanes are
/// masked out of later rounds and never re-touched. Every lane is therefore
/// bit-identical to a scalar solve of the same problem.
///
/// Lane buffers grow on first use and are reused afterwards; a warm batch
/// allocates nothing as long as problem sizes do not grow.
#[derive(Debug, Default)]
pub struct AmvaBatch {
    lanes: Vec<AmvaScratch>,
    done: Vec<bool>,
    residual: Vec<f64>,
    errs: Vec<Option<SimError>>,
    soa: Soa,
}

/// Structure-of-arrays state for shape-uniform windows: every per-lane
/// quantity is stored lane-contiguous (`[... logical index ...][lane]`
/// with a fixed column stride), so the lane loop — the innermost loop of
/// every round phase — walks unit-stride memory with no per-lane pointer
/// chasing. That contiguity is what actually buys the interleaving win:
/// each lane's loop-carried chain (queues → residence → throughput →
/// queues, through a divide) stalls a scalar solve, and K adjacent
/// independent lanes give out-of-order execution real work to overlap
/// into those stalls.
///
/// Converged lanes are *compacted out*: the last live column is swapped
/// into the retiring column's slot (a handful of moves), so live width
/// shrinks as lanes finish and dead lanes are never re-touched — which
/// both preserves bit-identity and keeps late rounds from paying for
/// drained lanes.
#[derive(Debug, Default)]
struct Soa {
    /// Column stride (the window's initial live width).
    stride: usize,
    /// Queue lengths, `[class × station][lane]`.
    q: Vec<f64>,
    /// Per-class throughput, `[class][lane]`.
    x: Vec<f64>,
    /// Station demands, `[class × station][lane]`.
    dem: Vec<f64>,
    /// Population, `[class][lane]`.
    pop: Vec<f64>,
    /// Precomputed `population - 1.0` (bit-identical hoist), `[class][lane]`.
    nm1: Vec<f64>,
    /// Think time, `[class][lane]`.
    think: Vec<f64>,
    /// Total queue per station, `[station][lane]` (per-round scratch).
    qtot: Vec<f64>,
    /// Residence times, `[station][lane]` (per-class scratch).
    r: Vec<f64>,
    /// Residence-time accumulator, `[lane]` (per-class scratch).
    rtot: Vec<f64>,
    /// This round's residual, `[lane]`.
    res: Vec<f64>,
    /// Iterations taken so far, `[lane]`.
    iters: Vec<usize>,
    /// Which batch lane each live column belongs to, `[lane]`.
    lane_of: Vec<usize>,
}

impl Soa {
    /// Load one column per still-live lane (validation already done by
    /// `begin`, whose scalar queue seed is copied in verbatim). Returns
    /// the live width.
    fn pack(
        &mut self,
        problems: &[(&[ClassDemand], usize)],
        lanes: &[AmvaScratch],
        done: &[bool],
        nc: usize,
        stations: usize,
    ) -> usize {
        self.lane_of.clear();
        for (i, d) in done.iter().enumerate() {
            if !d {
                self.lane_of.push(i);
            }
        }
        let kw = self.lane_of.len();
        self.stride = kw;
        self.q.clear();
        self.q.resize(nc * stations * kw, 0.0);
        self.dem.clear();
        self.dem.resize(nc * stations * kw, 0.0);
        self.x.clear();
        self.x.resize(nc * kw, 0.0);
        self.pop.clear();
        self.pop.resize(nc * kw, 0.0);
        self.nm1.clear();
        self.nm1.resize(nc * kw, 0.0);
        self.think.clear();
        self.think.resize(nc * kw, 0.0);
        self.qtot.clear();
        self.qtot.resize(stations * kw, 0.0);
        self.r.clear();
        self.r.resize(stations * kw, 0.0);
        self.rtot.clear();
        self.rtot.resize(kw, 0.0);
        self.res.clear();
        self.res.resize(kw, 0.0);
        self.iters.clear();
        self.iters.resize(kw, 0);
        for (col, &lane) in self.lane_of.iter().enumerate() {
            let classes = problems[lane].0;
            for (j, c) in classes.iter().enumerate() {
                let cb = j * kw;
                self.pop[cb + col] = c.population;
                self.nm1[cb + col] = c.population - 1.0;
                self.think[cb + col] = c.think_time_s;
                for s in 0..stations {
                    let idx = (j * stations + s) * kw;
                    self.dem[idx + col] = c.demands_s[s];
                    self.q[idx + col] = lanes[lane].q[j * stations + s];
                }
            }
        }
        kw
    }

    /// One lockstep Bard–Schweitzer round over the first `kw` columns.
    /// Each column executes exactly the floating-point sequence of
    /// [`AmvaScratch::iterate`] — same class order, same station order,
    /// same accumulation order, `(q·(n-1))/n` association included — so
    /// results stay bit-identical to scalar solves; only the interleaving
    /// across lanes differs.
    fn round(&mut self, kw: usize, nc: usize, stations: usize) {
        let ks = self.stride;
        let Soa {
            q,
            x,
            dem,
            pop,
            nm1,
            think,
            qtot,
            r,
            rtot,
            res,
            iters,
            ..
        } = self;
        for it in iters[..kw].iter_mut() {
            *it += 1;
        }
        for v in res[..kw].iter_mut() {
            *v = 0.0;
        }
        // Total queue per station, accumulated in class order. The first
        // class assigns instead of zero-then-add: queues are never -0.0
        // (seeded non-negative; round-to-nearest sums only produce +0.0),
        // so `q` and `0.0 + q` are the same bits.
        for j in 0..nc {
            for s in 0..stations {
                let base = (j * stations + s) * ks;
                let qrow = &q[base..base + kw];
                let qt = &mut qtot[s * ks..s * ks + kw];
                if j == 0 {
                    qt[..kw].copy_from_slice(qrow);
                } else {
                    for l in 0..kw {
                        qt[l] += qrow[l];
                    }
                }
            }
        }
        for j in 0..nc {
            let cb = j * ks;
            // Class-row slices hoisted once: the station loops below then
            // index only length-`kw` slices, so bounds checks vanish.
            let prow = &pop[cb..cb + kw];
            let nrow = &nm1[cb..cb + kw];
            let trow = &think[cb..cb + kw];
            let xrow = &mut x[cb..cb + kw];
            // Class prologue: zero-population lanes emit x = 0 and sit
            // the class out (their scratch writes below are never read).
            for l in 0..kw {
                if prow[l] <= 0.0 {
                    xrow[l] = 0.0;
                } else {
                    rtot[l] = 0.0;
                }
            }
            // Residence times, lanes innermost. Zero-demand stations get
            // `r = 0.0` written in-pass — the value the scalar kernel's
            // up-front zeroing leaves there.
            for s in 0..stations {
                let base = (j * stations + s) * ks;
                let qrow = &q[base..base + kw];
                let drow = &dem[base..base + kw];
                let qt = &qtot[s * ks..s * ks + kw];
                let rrow = &mut r[s * ks..s * ks + kw];
                for l in 0..kw {
                    let n = prow[l];
                    if n <= 0.0 {
                        continue;
                    }
                    let d = drow[l];
                    if d <= 0.0 {
                        rrow[l] = 0.0;
                        continue;
                    }
                    let qjs = qrow[l];
                    let others = qt[l] - qjs;
                    let own = if n > 1.0 { qjs * nrow[l] / n } else { 0.0 };
                    let rv = d * (1.0 + others + own);
                    rrow[l] = rv;
                    rtot[l] += rv;
                }
            }
            // Little's law on the full cycle: one divide per lane.
            for l in 0..kw {
                let n = prow[l];
                if n > 0.0 {
                    xrow[l] = n / (trow[l] + rtot[l]);
                }
            }
            // Damped queue update + residual, lanes innermost again.
            for s in 0..stations {
                let base = (j * stations + s) * ks;
                let qrow = &mut q[base..base + kw];
                let rrow = &r[s * ks..s * ks + kw];
                for l in 0..kw {
                    if prow[l] <= 0.0 {
                        continue;
                    }
                    let new_q = xrow[l] * rrow[l];
                    let delta = new_q - qrow[l];
                    res[l] = res[l].max(delta.abs());
                    qrow[l] += DAMPING * delta;
                }
            }
        }
    }

    /// Retire column `col`: copy its converged state out to its lane's
    /// scalar scratch, then compact by moving the last live column
    /// (`kw - 1`) into its slot. The caller shrinks the live width.
    fn retire(
        &mut self,
        col: usize,
        kw: usize,
        nc: usize,
        stations: usize,
        lanes: &mut [AmvaScratch],
        residual: &mut [f64],
    ) {
        let ks = self.stride;
        let lane = self.lane_of[col];
        let sc = &mut lanes[lane];
        for j in 0..nc {
            for s in 0..stations {
                sc.q[j * stations + s] = self.q[(j * stations + s) * ks + col];
            }
            sc.x[j] = self.x[j * ks + col];
        }
        sc.iterations = self.iters[col];
        residual[lane] = self.res[col];
        let last = kw - 1;
        if col != last {
            for j in 0..nc {
                for s in 0..stations {
                    let idx = (j * stations + s) * ks;
                    self.q[idx + col] = self.q[idx + last];
                    self.dem[idx + col] = self.dem[idx + last];
                }
                let cb = j * ks;
                self.x[cb + col] = self.x[cb + last];
                self.pop[cb + col] = self.pop[cb + last];
                self.nm1[cb + col] = self.nm1[cb + last];
                self.think[cb + col] = self.think[cb + last];
            }
            self.res[col] = self.res[last];
            self.iters[col] = self.iters[last];
            self.lane_of[col] = self.lane_of[last];
        }
    }
}

impl AmvaBatch {
    /// Empty batch; lanes are created on first [`AmvaBatch::solve`].
    pub fn new() -> AmvaBatch {
        AmvaBatch::default()
    }

    /// Solve `problems[i] = (classes, stations)` in lockstep, one lane per
    /// problem. Every lane runs to its own natural end — convergence, the
    /// iteration budget, or a validation failure — and afterwards lane `i`
    /// is readable through [`AmvaBatch::lane`] exactly as if
    /// [`AmvaScratch::solve`] had run that problem alone.
    ///
    /// If any lane fails, the error of the lowest-indexed failing lane is
    /// returned (deterministic, independent of convergence order); callers
    /// abandon the whole window, matching the scalar sweep's fail-fast
    /// semantics. The remaining lanes still hold valid scalar-identical
    /// state.
    pub fn solve(&mut self, problems: &[(&[ClassDemand], usize)]) -> Result<(), SimError> {
        let k = problems.len();
        while self.lanes.len() < k {
            self.lanes.push(AmvaScratch::new());
        }
        self.done.clear();
        self.done.resize(k, false);
        self.residual.clear();
        self.residual.resize(k, f64::INFINITY);
        self.errs.clear();
        self.errs.resize(k, None);

        for (i, &(classes, stations)) in problems.iter().enumerate() {
            if let Err(e) = self.lanes[i].begin(classes, stations) {
                self.done[i] = true;
                self.errs[i] = Some(e);
            }
        }

        // Shape-uniform windows (every lane the same class × station
        // counts — the sweep drivers' case, where lanes differ only in
        // demands) run the lane-interleaved SoA kernel; mixed windows fall
        // back to whole-lane rotation. Both advance every live lane by
        // exactly one scalar-identical iteration per round.
        let uniform = k >= 2
            && problems
                .windows(2)
                .all(|w| w[0].0.len() == w[1].0.len() && w[0].1 == w[1].1);
        if uniform {
            let nc = problems[0].0.len();
            let stations = problems[0].1;
            let mut kw = self
                .soa
                .pack(problems, &self.lanes, &self.done, nc, stations);
            for _round in 0..MAX_ITER {
                if kw == 0 {
                    break;
                }
                self.soa.round(kw, nc, stations);
                let mut col = 0;
                while col < kw {
                    if self.soa.res[col] < TOL {
                        self.soa
                            .retire(col, kw, nc, stations, &mut self.lanes, &mut self.residual);
                        kw -= 1;
                    } else {
                        col += 1;
                    }
                }
            }
            // Lanes still live after MAX_ITER rounds: copy their state out
            // with the last round's residual (convergence_err decides).
            while kw > 0 {
                self.soa
                    .retire(0, kw, nc, stations, &mut self.lanes, &mut self.residual);
                kw -= 1;
            }
        } else {
            for _round in 0..MAX_ITER {
                let mut live = false;
                for (i, &(classes, _)) in problems.iter().enumerate() {
                    if self.done[i] {
                        continue;
                    }
                    let res = self.lanes[i].iterate(classes);
                    self.residual[i] = res;
                    if res < TOL {
                        self.done[i] = true;
                    } else {
                        live = true;
                    }
                }
                if !live {
                    break;
                }
            }
        }

        for (i, &(classes, _)) in problems.iter().enumerate() {
            if self.errs[i].is_some() {
                continue;
            }
            match self.lanes[i].convergence_err(self.residual[i]) {
                Ok(()) => self.lanes[i].finish(classes),
                Err(e) => self.errs[i] = Some(e),
            }
        }
        match self.errs.iter().flatten().next() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Lane `i`'s solver state after [`AmvaBatch::solve`] — read it with
    /// the scalar accessors ([`AmvaScratch::throughput`],
    /// [`AmvaScratch::queue`], [`AmvaScratch::station_util`],
    /// [`AmvaScratch::iterations`], …).
    pub fn lane(&self, i: usize) -> &AmvaScratch {
        &self.lanes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact single-class MVA for validation.
    fn exact_mva_single(n: usize, z: f64, d: f64) -> f64 {
        let mut q = 0.0;
        let mut x = 0.0;
        for k in 1..=n {
            let r = d * (1.0 + q);
            x = k as f64 / (z + r);
            q = x * r;
        }
        x
    }

    #[test]
    fn matches_exact_mva_single_class() {
        for &n in &[1usize, 2, 4, 8] {
            for &(z, d) in &[(1.0, 1.0), (3.0, 0.5), (0.5, 2.0)] {
                let sol = solve(
                    &[ClassDemand {
                        population: n as f64,
                        think_time_s: z,
                        demands_s: vec![d],
                    }],
                    1,
                )
                .unwrap();
                let exact = exact_mva_single(n, z, d);
                let rel = (sol.throughput[0] - exact).abs() / exact;
                assert!(
                    rel < 0.08,
                    "n={n} z={z} d={d}: amva={} exact={exact}",
                    sol.throughput[0]
                );
            }
        }
    }

    #[test]
    fn n1_is_exact() {
        let sol = solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 2.0,
                demands_s: vec![3.0],
            }],
            1,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.0 / 5.0).abs() < 1e-6);
        // Disk utilisation = X·D = 0.6: the single customer leaves the disk
        // idle 40% of the time — the co-location headroom.
        assert!((sol.station_util[0] - 0.6).abs() < 1e-5);
    }

    #[test]
    fn symmetric_classes_share_equally() {
        let c = ClassDemand {
            population: 2.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let sol = solve(&[c.clone(), c], 1).unwrap();
        assert!((sol.throughput[0] - sol.throughput[1]).abs() < 1e-6);
        assert!(sol.station_util[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn colocation_fills_idle_disk_time() {
        // One I/O-ish job: Z = 1, D_disk = 1, one slot → util 0.5.
        let one = ClassDemand {
            population: 1.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let alone = solve(std::slice::from_ref(&one), 1).unwrap();
        let pair = solve(&[one.clone(), one], 1).unwrap();
        // Per-job throughput drops under sharing, but far less than 2×:
        // the pair's combined throughput exceeds the standalone throughput.
        let x_alone = alone.throughput[0];
        let x_pair = pair.throughput[0];
        assert!(x_pair < x_alone);
        assert!(
            2.0 * x_pair > 1.3 * x_alone,
            "x_pair={x_pair} x_alone={x_alone}"
        );
        assert!(pair.station_util[0] > alone.station_util[0]);
    }

    #[test]
    fn zero_population_class_is_inert() {
        let busy = ClassDemand {
            population: 4.0,
            think_time_s: 1.0,
            demands_s: vec![0.5],
        };
        let idle = ClassDemand {
            population: 0.0,
            think_time_s: 0.0,
            demands_s: vec![0.0],
        };
        let with_idle = solve(&[busy.clone(), idle], 1).unwrap();
        let alone = solve(&[busy], 1).unwrap();
        assert!((with_idle.throughput[0] - alone.throughput[0]).abs() < 1e-9);
        assert_eq!(with_idle.throughput[1], 0.0);
    }

    #[test]
    fn throughput_bounded_by_capacity_and_population() {
        let sol = solve(
            &[ClassDemand {
                population: 8.0,
                think_time_s: 0.1,
                demands_s: vec![1.0],
            }],
            1,
        )
        .unwrap();
        // Capacity bound: X ≤ 1/D.
        assert!(sol.throughput[0] <= 1.0 / 1.0 + 1e-6);
        // Heavy load should approach the capacity bound.
        assert!(sol.throughput[0] > 0.9);
    }

    #[test]
    fn pure_delay_class() {
        // No shared demand: X = N/Z exactly.
        let sol = solve(
            &[ClassDemand {
                population: 3.0,
                think_time_s: 2.0,
                demands_s: vec![0.0, 0.0],
            }],
            2,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve(
            &[ClassDemand {
                population: -1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 0.0,
                demands_s: vec![0.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0, 1.0],
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_problem_sizes() {
        // One scratch solving a 2-class problem, then a 1-class problem,
        // then the 2-class problem again must agree to the bit with fresh
        // solves: clear+resize reuse may never leak state between solves.
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let mut scratch = AmvaScratch::new();
        for classes in [vec![a.clone(), b.clone()], vec![b.clone()], vec![a, b]] {
            let stations = classes[0].demands_s.len();
            scratch.solve(&classes, stations).unwrap();
            let fresh = solve(&classes, stations).unwrap();
            assert_eq!(scratch.iterations(), fresh.iterations);
            for j in 0..classes.len() {
                assert_eq!(
                    scratch.throughput()[j].to_bits(),
                    fresh.throughput[j].to_bits()
                );
                for s in 0..stations {
                    assert_eq!(scratch.queue(j, s).to_bits(), fresh.queue[j][s].to_bits());
                }
            }
            for s in 0..stations {
                assert_eq!(
                    scratch.station_util()[s].to_bits(),
                    fresh.station_util[s].to_bits()
                );
                assert_eq!(
                    scratch.station_queue()[s].to_bits(),
                    fresh.station_queue[s].to_bits()
                );
            }
        }
    }

    /// A small family of unrelated problems exercising distinct code paths:
    /// different station counts, zero-population classes, zero-demand
    /// stations, and convergence speeds.
    fn batch_problem_set() -> Vec<Vec<ClassDemand>> {
        vec![
            vec![ClassDemand {
                population: 2.0,
                think_time_s: 3.0,
                demands_s: vec![1.0],
            }],
            vec![
                ClassDemand {
                    population: 4.0,
                    think_time_s: 0.5,
                    demands_s: vec![0.8, 0.1],
                },
                ClassDemand {
                    population: 2.0,
                    think_time_s: 2.0,
                    demands_s: vec![0.1, 0.9],
                },
            ],
            vec![ClassDemand {
                population: 8.0,
                think_time_s: 0.1,
                demands_s: vec![2.0, 0.0, 0.4],
            }],
            vec![
                ClassDemand {
                    population: 0.0,
                    think_time_s: 0.0,
                    demands_s: vec![0.0, 0.0],
                },
                ClassDemand {
                    population: 3.0,
                    think_time_s: 1.0,
                    demands_s: vec![0.5, 0.5],
                },
            ],
            vec![ClassDemand {
                population: 1.0,
                think_time_s: 0.0,
                demands_s: vec![1.5],
            }],
            vec![ClassDemand {
                population: 6.0,
                think_time_s: 4.0,
                demands_s: vec![0.2, 0.2, 0.2, 0.2],
            }],
            vec![ClassDemand {
                population: 3.0,
                think_time_s: 2.0,
                demands_s: vec![0.0, 0.0],
            }],
            vec![ClassDemand {
                population: 5.0,
                think_time_s: 0.25,
                demands_s: vec![1.1, 0.7],
            }],
        ]
    }

    #[test]
    fn batch_lanes_are_bit_identical_to_scalar_at_every_width() {
        let problems = batch_problem_set();
        let mut batch = AmvaBatch::new();
        for width in 1..=problems.len() {
            // Reuse one batch across widths: buffer reuse may not leak
            // state between windows, mirroring the scratch-reuse contract.
            for window in problems.chunks(width) {
                let probs: Vec<(&[ClassDemand], usize)> = window
                    .iter()
                    .map(|c| (c.as_slice(), c[0].demands_s.len()))
                    .collect();
                batch.solve(&probs).unwrap();
                for (i, classes) in window.iter().enumerate() {
                    let stations = classes[0].demands_s.len();
                    let mut scalar = AmvaScratch::new();
                    scalar.solve(classes, stations).unwrap();
                    let lane = batch.lane(i);
                    assert_eq!(lane.iterations(), scalar.iterations(), "width {width}");
                    for j in 0..classes.len() {
                        assert_eq!(
                            lane.throughput()[j].to_bits(),
                            scalar.throughput()[j].to_bits()
                        );
                        for s in 0..stations {
                            assert_eq!(lane.queue(j, s).to_bits(), scalar.queue(j, s).to_bits());
                        }
                    }
                    for s in 0..stations {
                        assert_eq!(
                            lane.station_util()[s].to_bits(),
                            scalar.station_util()[s].to_bits()
                        );
                        assert_eq!(
                            lane.station_queue()[s].to_bits(),
                            scalar.station_queue()[s].to_bits()
                        );
                    }
                }
            }
        }
    }

    /// Shape-uniform family (2 classes × 3 stations throughout) so the
    /// batch takes the lane-interleaved kernel: varied populations (zero,
    /// one, fractional, heavy), zero-demand stations, varied convergence
    /// speeds.
    fn uniform_problem_set() -> Vec<Vec<ClassDemand>> {
        let mk = |pop_a: f64, pop_b: f64, da: [f64; 3], db: [f64; 3], za: f64, zb: f64| {
            vec![
                ClassDemand {
                    population: pop_a,
                    think_time_s: za,
                    demands_s: da.to_vec(),
                },
                ClassDemand {
                    population: pop_b,
                    think_time_s: zb,
                    demands_s: db.to_vec(),
                },
            ]
        };
        vec![
            mk(2.0, 3.0, [1.0, 0.2, 0.0], [0.3, 0.9, 0.1], 3.0, 1.0),
            mk(8.0, 1.0, [2.0, 0.0, 0.4], [0.1, 0.1, 0.1], 0.1, 5.0),
            mk(0.0, 3.0, [0.0, 0.0, 0.0], [0.5, 0.5, 0.2], 0.0, 1.0),
            mk(1.0, 1.0, [1.5, 0.0, 0.0], [0.0, 1.5, 0.0], 0.0, 0.0),
            mk(6.0, 2.5, [0.2, 0.2, 0.2], [0.4, 0.0, 0.8], 4.0, 0.25),
            mk(5.0, 4.0, [1.1, 0.7, 0.3], [0.9, 1.3, 0.0], 0.25, 0.5),
            mk(3.0, 0.0, [0.0, 0.0, 0.9], [0.0, 0.0, 0.0], 2.0, 0.0),
            mk(4.0, 4.0, [0.8, 0.1, 0.5], [0.1, 0.9, 0.5], 0.5, 2.0),
        ]
    }

    #[test]
    fn interleaved_kernel_is_bit_identical_to_scalar_at_every_width() {
        let problems = uniform_problem_set();
        let mut batch = AmvaBatch::new();
        for width in 1..=problems.len() {
            for window in problems.chunks(width) {
                let probs: Vec<(&[ClassDemand], usize)> =
                    window.iter().map(|c| (c.as_slice(), 3)).collect();
                batch.solve(&probs).unwrap();
                for (i, classes) in window.iter().enumerate() {
                    let mut scalar = AmvaScratch::new();
                    scalar.solve(classes, 3).unwrap();
                    let lane = batch.lane(i);
                    assert_eq!(lane.iterations(), scalar.iterations(), "width {width}");
                    for j in 0..classes.len() {
                        assert_eq!(
                            lane.throughput()[j].to_bits(),
                            scalar.throughput()[j].to_bits()
                        );
                        for s in 0..3 {
                            assert_eq!(lane.queue(j, s).to_bits(), scalar.queue(j, s).to_bits());
                        }
                    }
                    for s in 0..3 {
                        assert_eq!(
                            lane.station_util()[s].to_bits(),
                            scalar.station_util()[s].to_bits()
                        );
                        assert_eq!(
                            lane.station_queue()[s].to_bits(),
                            scalar.station_queue()[s].to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_reports_lowest_failing_lane_and_keeps_good_lanes() {
        let good = vec![ClassDemand {
            population: 2.0,
            think_time_s: 3.0,
            demands_s: vec![1.0],
        }];
        let bad = vec![ClassDemand {
            population: -1.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        }];
        let mut batch = AmvaBatch::new();
        let err = batch
            .solve(&[(good.as_slice(), 1), (bad.as_slice(), 1)])
            .unwrap_err();
        let mut scalar = AmvaScratch::new();
        let scalar_err = scalar.solve(&bad, 1).unwrap_err();
        assert_eq!(err, scalar_err);
        // The good lane still finished with scalar-identical state.
        scalar.solve(&good, 1).unwrap();
        assert_eq!(
            batch.lane(0).throughput()[0].to_bits(),
            scalar.throughput()[0].to_bits()
        );
    }

    #[test]
    #[ignore = "timing probe, run with --release -- --ignored --nocapture"]
    fn timing_probe_interleaved_vs_scalar() {
        // Equal-shape, similar-iteration-count lanes: isolates the
        // interleaved kernel's ILP from lane drain effects.
        let mk = |scale: f64| {
            vec![
                ClassDemand {
                    population: 6.0,
                    think_time_s: 0.3,
                    demands_s: vec![0.9 * scale, 0.4, 0.2],
                },
                ClassDemand {
                    population: 4.0,
                    think_time_s: 0.5,
                    demands_s: vec![0.2, 0.8 * scale, 0.3],
                },
            ]
        };
        let problems: Vec<Vec<ClassDemand>> = (0..16).map(|i| mk(1.0 + 0.01 * i as f64)).collect();
        let mut scratch = AmvaScratch::new();
        let reps = 10_000usize;
        let t0 = std::time::Instant::now();
        let mut iters = 0usize;
        for _ in 0..reps {
            for p in &problems {
                scratch.solve(p, 3).unwrap();
                iters += scratch.iterations();
            }
        }
        let scalar_s = t0.elapsed().as_secs_f64();
        println!(
            "scalar: {scalar_s:.3}s ({iters} iters), {:.1} ns/iter",
            1e9 * scalar_s / iters as f64
        );
        let mut batch = AmvaBatch::new();
        for width in [2usize, 4, 8, 12, 16] {
            let t0 = std::time::Instant::now();
            let mut biters = 0usize;
            for _ in 0..reps {
                for window in problems.chunks(width) {
                    let probs: Vec<(&[ClassDemand], usize)> =
                        window.iter().map(|p| (p.as_slice(), 3)).collect();
                    batch.solve(&probs).unwrap();
                    for i in 0..probs.len() {
                        biters += batch.lane(i).iterations();
                    }
                }
            }
            let batch_s = t0.elapsed().as_secs_f64();
            println!(
                "batch{width}: {batch_s:.3}s ({biters} iters), speedup {:.2}x, {:.1} ns/iter",
                scalar_s / batch_s,
                1e9 * batch_s / biters as f64
            );
        }
    }

    #[test]
    fn two_stations_multiclass_utilisation_valid() {
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let sol = solve(&[a, b], 2).unwrap();
        for u in &sol.station_util {
            assert!(*u >= 0.0 && *u <= 1.0 + 1e-9);
        }
        assert!(sol.throughput.iter().all(|x| *x > 0.0));
    }
}
