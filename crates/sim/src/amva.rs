//! Approximate Mean Value Analysis (Bard–Schweitzer AMVA) for multiclass
//! closed queueing networks.
//!
//! ## Why a queueing model?
//!
//! A MapReduce job with `m` mapper slots is, at the node level, a *closed*
//! system: each slot repeatedly (1) reads a block from the shared disk, then
//! (2) computes on its private core. The slot count never changes during a
//! stage, so the right performance model is a closed network with `m`
//! customers per job:
//!
//! * the private cores form a **delay station** (no queueing — every slot owns
//!   a core), contributing the think time `Z`;
//! * the disk (and, cluster-wide, the NIC) is a **processor-sharing station**
//!   contested by *all* co-located jobs.
//!
//! This structure is what creates the paper's co-location headroom: a single
//! I/O-bound job with few slots leaves the disk idle while its slots compute
//! (`U_disk = X·D_disk < 1`), and a co-located job's requests soak up exactly
//! that idle time. AMVA gives us each job's steady-state task throughput under
//! contention in microseconds of compute, which is what lets the brute-force
//! oracle of the paper (84 480 runs) be swept in seconds.
//!
//! ## Algorithm
//!
//! Bard–Schweitzer fixed point: queue lengths seed residence times,
//! residence times give throughputs (Little's law on the full cycle),
//! throughputs refresh queue lengths; iterate with damping until the queue
//! estimate is stable. For a single class this is exact in the limit and
//! within a few percent of exact MVA for small populations — adequate here,
//! since model error is swamped by profile calibration error.

use crate::error::SimError;
use crate::simd::{self, LaneVec, SimdBackend};

/// Label for a shared processor-sharing station (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedStation {
    /// Human-readable name, e.g. `"disk"` or `"nic"`.
    pub name: &'static str,
}

/// Demand description of one customer class (= one co-located job).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDemand {
    /// Customer population `N_j` — the job's slot count. Fractional
    /// populations are allowed (used for tail-wave corrections).
    pub population: f64,
    /// Think time `Z_j` (seconds per cycle spent at the private cores).
    pub think_time_s: f64,
    /// Service demand at each shared station (seconds per cycle).
    pub demands_s: Vec<f64>,
}

impl ClassDemand {
    fn validate(&self, stations: usize) -> Result<(), SimError> {
        if !self.population.is_finite() || self.population < 0.0 {
            return Err(SimError::InvalidDemand(
                "population must be finite and >= 0",
            ));
        }
        if !self.think_time_s.is_finite() || self.think_time_s < 0.0 {
            return Err(SimError::InvalidDemand(
                "think time must be finite and >= 0",
            ));
        }
        if self.demands_s.len() != stations {
            return Err(SimError::InvalidDemand(
                "demand vector length != station count",
            ));
        }
        if self.demands_s.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(SimError::InvalidDemand(
                "station demand must be finite and >= 0",
            ));
        }
        if self.population > 0.0 {
            let total: f64 = self.think_time_s + self.demands_s.iter().sum::<f64>();
            if total <= 0.0 {
                return Err(SimError::InvalidDemand(
                    "class with customers needs positive total demand",
                ));
            }
        }
        Ok(())
    }
}

/// Converged AMVA solution.
#[derive(Debug, Clone)]
pub struct AmvaSolution {
    /// Per-class cycle throughput `X_j` (cycles/second).
    pub throughput: Vec<f64>,
    /// Per-class, per-station mean queue length `Q[j][s]`.
    pub queue: Vec<Vec<f64>>,
    /// Per-station utilisation `U_s = Σ_j X_j·D_{j,s}`, clamped to `[0, 1]`.
    pub station_util: Vec<f64>,
    /// Per-station *total* mean queue length (customers at or in service).
    pub station_queue: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl AmvaSolution {
    /// Mean number of class-`j` customers currently *thinking* (at their
    /// private cores) — by Little's law, `X_j · Z_j`.
    pub fn thinking(&self, class: usize, classes: &[ClassDemand]) -> f64 {
        self.throughput[class] * classes[class].think_time_s
    }
}

/// Convergence tolerance on queue lengths.
const TOL: f64 = 1e-7;
/// Iteration budget; typical problems converge in < 60 iterations.
const MAX_ITER: usize = 4000;
/// Damping factor for the queue update (guards oscillation at heavy load).
const DAMPING: f64 = 0.5;

/// Reusable solver state for the Bard–Schweitzer fixed point.
///
/// The executor calls AMVA inside a ~200-iteration outer fixed point on
/// *every* rate re-solve, so the solver must not touch the heap once warm.
/// All working vectors live here and are grown monotonically (`clear` +
/// `resize` keeps capacity, so after the first solve at a given problem
/// size every subsequent solve is allocation-free). [`solve`] is a thin
/// wrapper over this type, so both entry points share one arithmetic path
/// and produce bit-identical results.
#[derive(Debug, Default)]
pub struct AmvaScratch {
    /// Queue lengths, row-major: `q[j * stations + s]`.
    q: Vec<f64>,
    /// Per-class throughput.
    x: Vec<f64>,
    /// Per-class residence times (reused across classes within an iteration).
    r: Vec<f64>,
    /// Total queue per station.
    qtot: Vec<f64>,
    station_util: Vec<f64>,
    station_queue: Vec<f64>,
    nc: usize,
    stations: usize,
    iterations: usize,
}

impl AmvaScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> AmvaScratch {
        AmvaScratch::default()
    }

    /// Solve the network in place. Identical semantics (and bit-identical
    /// results) to [`solve`]; the converged state is read back through the
    /// accessors below.
    ///
    /// The fixed point is decomposed into [`Self::begin`] (validate + seed),
    /// [`Self::iterate`] (one Bard–Schweitzer step) and [`Self::finish`]
    /// (derived per-station figures) so [`AmvaBatch`] can drive the *exact*
    /// same arithmetic lockstep across independent lanes.
    pub fn solve(&mut self, classes: &[ClassDemand], stations: usize) -> Result<(), SimError> {
        self.begin(classes, stations)?;
        let mut residual = f64::INFINITY;
        for _ in 0..MAX_ITER {
            residual = self.iterate(classes);
            if residual < TOL {
                break;
            }
        }
        self.convergence_err(residual)?;
        self.finish(classes);
        Ok(())
    }

    /// Validate the problem, size the buffers and seed the fixed point.
    fn begin(&mut self, classes: &[ClassDemand], stations: usize) -> Result<(), SimError> {
        self.begin_sized(classes, stations)?;
        // Seed: spread each population across stations + think.
        for (j, c) in classes.iter().enumerate() {
            if c.population <= 0.0 {
                continue;
            }
            let share = c.population / (stations as f64 + 1.0);
            for (qv, d) in self.q[j * stations..(j + 1) * stations]
                .iter_mut()
                .zip(&c.demands_s)
            {
                *qv = if *d > 0.0 { share } else { 0.0 };
            }
        }
        Ok(())
    }

    /// The validation/sizing half of [`AmvaScratch::begin`], without the
    /// queue seed. Resident windows start here: their seed is recomputed
    /// inside [`Soa::pack_window`] every round (same expression, same
    /// bits), so spreading it into the scalar scratch as well would be
    /// dead work — nothing reads `q` before [`Soa::retire`] writes the
    /// converged queues back.
    fn begin_sized(&mut self, classes: &[ClassDemand], stations: usize) -> Result<(), SimError> {
        for c in classes {
            c.validate(stations)?;
        }
        let nc = classes.len();
        self.nc = nc;
        self.stations = stations;
        self.q.clear();
        self.q.resize(nc * stations, 0.0);
        self.x.clear();
        self.x.resize(nc, 0.0);
        self.r.clear();
        self.r.resize(stations, 0.0);
        self.qtot.clear();
        self.qtot.resize(stations, 0.0);
        self.iterations = 0;
        Ok(())
    }

    /// One Bard–Schweitzer iteration; returns the residual (max queue
    /// delta). Hot loop: row slices are hoisted out of the station loops so
    /// the indexing below is bounds-checked once per class, not once per
    /// access. Every floating-point operation and its order is unchanged
    /// from the pre-split implementation (the executor's bit-identity
    /// property tests pin this).
    #[inline]
    fn iterate(&mut self, classes: &[ClassDemand]) -> f64 {
        self.iterations += 1;
        let stations = self.stations;
        let AmvaScratch { q, x, r, qtot, .. } = self;
        // Total queue per station.
        for v in qtot.iter_mut() {
            *v = 0.0;
        }
        for row in q.chunks_exact(stations.max(1)) {
            for (qt, v) in qtot.iter_mut().zip(row) {
                *qt += v;
            }
        }
        let mut residual = 0.0_f64;
        for (j, c) in classes.iter().enumerate() {
            if c.population <= 0.0 {
                x[j] = 0.0;
                continue;
            }
            let n = c.population;
            let qrow = &mut q[j * stations..(j + 1) * stations];
            let demands = &c.demands_s[..stations];
            let mut r_total = 0.0;
            for v in r.iter_mut() {
                *v = 0.0;
            }
            for s in 0..stations {
                let d = demands[s];
                if d <= 0.0 {
                    continue;
                }
                // Bard–Schweitzer: a class-j arrival sees the other
                // classes' full queues plus (N_j-1)/N_j of its own.
                let others = qtot[s] - qrow[s];
                let own = if n > 1.0 {
                    qrow[s] * (n - 1.0) / n
                } else {
                    0.0
                };
                r[s] = d * (1.0 + others + own);
                r_total += r[s];
            }
            let xj = n / (c.think_time_s + r_total);
            x[j] = xj;
            for s in 0..stations {
                let new_q = xj * r[s];
                let delta = new_q - qrow[s];
                residual = residual.max(delta.abs());
                qrow[s] += DAMPING * delta;
            }
        }
        residual
    }

    /// The scalar loop's post-exit convergence test, verbatim.
    fn convergence_err(&self, residual: f64) -> Result<(), SimError> {
        if residual >= TOL * 10.0 && residual.is_finite() && residual > 1e-3 {
            return Err(SimError::NoConvergence {
                iterations: self.iterations,
                residual,
            });
        }
        Ok(())
    }

    /// Derive the per-station utilisation/queue figures from the converged
    /// fixed point.
    fn finish(&mut self, classes: &[ClassDemand]) {
        let stations = self.stations;
        self.station_util.clear();
        self.station_util.resize(stations, 0.0);
        self.station_queue.clear();
        self.station_queue.resize(stations, 0.0);
        for (j, c) in classes.iter().enumerate() {
            for s in 0..stations {
                self.station_util[s] += self.x[j] * c.demands_s[s];
                self.station_queue[s] += self.q[j * stations + s];
            }
        }
        for u in &mut self.station_util {
            *u = u.clamp(0.0, 1.0);
        }
    }

    /// Per-class cycle throughput `X_j` from the last solve.
    pub fn throughput(&self) -> &[f64] {
        &self.x[..self.nc]
    }

    /// Mean queue length of class `j` at station `s` from the last solve.
    pub fn queue(&self, class: usize, station: usize) -> f64 {
        self.q[class * self.stations + station]
    }

    /// Per-station utilisation (clamped to `[0, 1]`) from the last solve.
    pub fn station_util(&self) -> &[f64] {
        &self.station_util[..self.stations]
    }

    /// Per-station total mean queue length from the last solve.
    pub fn station_queue(&self) -> &[f64] {
        &self.station_queue[..self.stations]
    }

    /// Fixed-point iterations used by the last solve.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Materialise the last solve as an owned [`AmvaSolution`].
    fn to_solution(&self) -> AmvaSolution {
        let queue = if self.stations == 0 {
            vec![Vec::new(); self.nc]
        } else {
            self.q[..self.nc * self.stations]
                .chunks(self.stations)
                .map(|c| c.to_vec())
                .collect()
        };
        AmvaSolution {
            throughput: self.x[..self.nc].to_vec(),
            queue,
            station_util: self.station_util[..self.stations].to_vec(),
            station_queue: self.station_queue[..self.stations].to_vec(),
            iterations: self.iterations,
        }
    }
}

/// Solve the network. `stations` is the number of shared PS stations; every
/// class must provide exactly that many demands.
///
/// Classes with zero population are carried through with zero throughput.
///
/// ```
/// use ecost_sim::amva::{solve, ClassDemand};
///
/// // One job with 2 slots: each cycle computes 3 s then reads 1 s of disk.
/// let job = ClassDemand {
///     population: 2.0,
///     think_time_s: 3.0,
///     demands_s: vec![1.0],
/// };
/// let sol = solve(&[job], 1).unwrap();
/// // Nearly two tasks per 4 s-cycle; the disk is mostly idle (≈ fill-in
/// // headroom for a co-located job).
/// assert!(sol.throughput[0] > 0.45 && sol.throughput[0] < 0.5);
/// assert!(sol.station_util[0] < 0.5);
/// ```
pub fn solve(classes: &[ClassDemand], stations: usize) -> Result<AmvaSolution, SimError> {
    let mut scratch = AmvaScratch::new();
    scratch.solve(classes, stations)?;
    Ok(scratch.to_solution())
}

/// Lane-interleaved batch of *independent* AMVA solves.
///
/// `K` unrelated fixed points advance in lockstep: each global round runs
/// one Bard–Schweitzer iteration in every still-unconverged lane. A lane's
/// loop-carried dependency — next iteration's queues feed on this one's —
/// is what caps the scalar solver (DESIGN.md §11: a dependent divide chain),
/// but *across* lanes the rounds are independent, so interleaving them lets
/// out-of-order execution overlap the chains.
///
/// Each lane runs the exact scalar [`AmvaScratch::solve`] sequence: same
/// seed, same per-iteration arithmetic order, same damping, same
/// convergence test and iteration count. Converged (or failed) lanes are
/// masked out of later rounds and never re-touched. Every lane is therefore
/// bit-identical to a scalar solve of the same problem.
///
/// Lane buffers grow on first use and are reused afterwards; a warm batch
/// allocates nothing as long as problem sizes do not grow.
///
/// On shape-uniform windows the lane loop runs on an explicit `f64x4`
/// vector backend ([`SimdBackend`], auto-detected; see `crate::simd`):
/// four adjacent columns advance per vector step, with the odd tail
/// (live width ≢ 0 mod 4) taking the scalar lane loop. Backends are
/// bit-identical by construction, so the choice never shows up in
/// results — only in throughput.
#[derive(Debug)]
pub struct AmvaBatch {
    lanes: Vec<AmvaScratch>,
    done: Vec<bool>,
    residual: Vec<f64>,
    errs: Vec<Option<SimError>>,
    soa: Soa,
    backend: SimdBackend,
    win: WindowState,
}

impl Default for AmvaBatch {
    fn default() -> AmvaBatch {
        AmvaBatch {
            lanes: Vec::new(),
            done: Vec::new(),
            residual: Vec::new(),
            errs: Vec::new(),
            soa: Soa::default(),
            backend: SimdBackend::detect(),
            win: WindowState::default(),
        }
    }
}

/// Resident-window state for [`AmvaBatch::begin_window`] /
/// [`AmvaBatch::solve_window`]: the shape of the open shape-uniform
/// window, validated once so re-solves of the same window skip
/// per-round validation entirely.
///
/// No queue seed is stored: `begin`'s population spread depends only on
/// each class's population and the *signs* of its demands — both
/// outer-invariant for the contention fixed point driving this API — so
/// [`Soa::pack_window`] recomputes it in place each round with the same
/// expression (and therefore the same bits), even after [`Soa::retire`]
/// scrambles the working columns.
#[derive(Debug, Default)]
struct WindowState {
    /// `(classes, stations, width)` of the open window; `None` when no
    /// window is open.
    shape: Option<(usize, usize, usize)>,
}

/// Structure-of-arrays state for shape-uniform windows: every per-lane
/// quantity is stored lane-contiguous (`[... logical index ...][lane]`
/// with a fixed column stride), so the lane loop — the innermost loop of
/// every round phase — walks unit-stride memory with no per-lane pointer
/// chasing. That contiguity is what actually buys the interleaving win:
/// each lane's loop-carried chain (queues → residence → throughput →
/// queues, through a divide) stalls a scalar solve, and K adjacent
/// independent lanes give out-of-order execution real work to overlap
/// into those stalls.
///
/// Converged lanes are *compacted out*: the last live column is swapped
/// into the retiring column's slot (a handful of moves), so live width
/// shrinks as lanes finish and dead lanes are never re-touched — which
/// both preserves bit-identity and keeps late rounds from paying for
/// drained lanes.
#[derive(Debug, Default)]
struct Soa {
    /// Column stride (the window's initial live width).
    stride: usize,
    /// Queue lengths, `[class × station][lane]`.
    q: Vec<f64>,
    /// Per-class throughput, `[class][lane]`.
    x: Vec<f64>,
    /// Station demands, `[class × station][lane]`.
    dem: Vec<f64>,
    /// Population, `[class][lane]`.
    pop: Vec<f64>,
    /// Precomputed `population - 1.0` (bit-identical hoist), `[class][lane]`.
    nm1: Vec<f64>,
    /// Think time, `[class][lane]`.
    think: Vec<f64>,
    /// Total queue per station, `[station][lane]` (per-round scratch).
    qtot: Vec<f64>,
    /// Residence times, `[station][lane]` (per-class scratch).
    r: Vec<f64>,
    /// Residence-time accumulator, `[lane]` (per-class scratch).
    rtot: Vec<f64>,
    /// This round's residual, `[lane]`.
    res: Vec<f64>,
    /// Iterations taken so far, `[lane]`.
    iters: Vec<usize>,
    /// Which batch lane each live column belongs to, `[lane]`.
    lane_of: Vec<usize>,
}

impl Soa {
    /// Load one column per still-live lane (validation already done by
    /// `begin`, whose scalar queue seed is copied in verbatim). Returns
    /// the live width.
    fn pack(
        &mut self,
        problems: &[(&[ClassDemand], usize)],
        lanes: &[AmvaScratch],
        done: &[bool],
        nc: usize,
        stations: usize,
    ) -> usize {
        self.lane_of.clear();
        for (i, d) in done.iter().enumerate() {
            if !d {
                self.lane_of.push(i);
            }
        }
        let kw = self.lane_of.len();
        self.stride = kw;
        self.q.clear();
        self.q.resize(nc * stations * kw, 0.0);
        self.dem.clear();
        self.dem.resize(nc * stations * kw, 0.0);
        self.x.clear();
        self.x.resize(nc * kw, 0.0);
        self.pop.clear();
        self.pop.resize(nc * kw, 0.0);
        self.nm1.clear();
        self.nm1.resize(nc * kw, 0.0);
        self.think.clear();
        self.think.resize(nc * kw, 0.0);
        self.qtot.clear();
        self.qtot.resize(stations * kw, 0.0);
        self.r.clear();
        self.r.resize(stations * kw, 0.0);
        self.rtot.clear();
        self.rtot.resize(kw, 0.0);
        self.res.clear();
        self.res.resize(kw, 0.0);
        self.iters.clear();
        self.iters.resize(kw, 0);
        for (col, &lane) in self.lane_of.iter().enumerate() {
            let classes = problems[lane].0;
            for (j, c) in classes.iter().enumerate() {
                let cb = j * kw;
                self.pop[cb + col] = c.population;
                self.nm1[cb + col] = c.population - 1.0;
                self.think[cb + col] = c.think_time_s;
                for s in 0..stations {
                    let idx = (j * stations + s) * kw;
                    self.dem[idx + col] = c.demands_s[s];
                    self.q[idx + col] = lanes[lane].q[j * stations + s];
                }
            }
        }
        kw
    }

    /// One lockstep Bard–Schweitzer round over the first `kw` columns.
    /// Each column executes exactly the floating-point sequence of
    /// [`AmvaScratch::iterate`] — same class order, same station order,
    /// same accumulation order, `(q·(n-1))/n` association included — so
    /// results stay bit-identical to scalar solves; only the interleaving
    /// across lanes differs.
    ///
    /// The vector backends peel the widest `f64x4`-aligned prefix of the
    /// live columns into [`round_chunks_impl`] and run the remaining tail
    /// columns (`kw mod 4`) through the scalar span. Columns are fully
    /// independent, so splitting them between kernels cannot change any
    /// column's bits.
    fn round(&mut self, kw: usize, nc: usize, stations: usize, backend: SimdBackend) {
        for it in self.iters[..kw].iter_mut() {
            *it += 1;
        }
        for v in self.res[..kw].iter_mut() {
            *v = 0.0;
        }
        let kw4 = match backend {
            SimdBackend::Scalar => 0,
            _ => kw & !3,
        };
        if kw4 > 0 {
            simd::round_chunks(backend, self.span(kw4, nc, stations));
        }
        if kw4 < kw {
            self.round_span(kw4, kw, nc, stations);
        }
    }

    /// Borrow the SoA state as a [`RoundSpan`] over the first `kw4` live
    /// columns for the vector kernel.
    fn span(&mut self, kw4: usize, nc: usize, stations: usize) -> RoundSpan<'_> {
        RoundSpan {
            q: &mut self.q,
            x: &mut self.x,
            dem: &self.dem,
            pop: &self.pop,
            nm1: &self.nm1,
            think: &self.think,
            qtot: &mut self.qtot,
            r: &mut self.r,
            res: &mut self.res,
            ks: self.stride,
            kw4,
            nc,
            stations,
        }
    }

    /// The scalar round body over columns `lo..hi` — the original
    /// lane-innermost loops, also serving as the vector backends' tail
    /// path (and, via `lo = 0, hi = kw`, as the whole `Scalar` arm).
    fn round_span(&mut self, lo: usize, hi: usize, nc: usize, stations: usize) {
        let ks = self.stride;
        let w = hi - lo;
        let Soa {
            q,
            x,
            dem,
            pop,
            nm1,
            think,
            qtot,
            r,
            rtot,
            res,
            ..
        } = self;
        let rtot = &mut rtot[lo..hi];
        let res = &mut res[lo..hi];
        // Total queue per station, accumulated in class order. The first
        // class assigns instead of zero-then-add: queues are never -0.0
        // (seeded non-negative; round-to-nearest sums only produce +0.0),
        // so `q` and `0.0 + q` are the same bits.
        for j in 0..nc {
            for s in 0..stations {
                let base = (j * stations + s) * ks + lo;
                let qrow = &q[base..base + w];
                let qb = s * ks + lo;
                let qt = &mut qtot[qb..qb + w];
                if j == 0 {
                    qt[..w].copy_from_slice(qrow);
                } else {
                    for l in 0..w {
                        qt[l] += qrow[l];
                    }
                }
            }
        }
        for j in 0..nc {
            let cb = j * ks + lo;
            // Class-row slices hoisted once: the station loops below then
            // index only length-`w` slices, so bounds checks vanish.
            let prow = &pop[cb..cb + w];
            let nrow = &nm1[cb..cb + w];
            let trow = &think[cb..cb + w];
            let xrow = &mut x[cb..cb + w];
            // Class prologue: zero-population lanes emit x = 0 and sit
            // the class out (their scratch writes below are never read).
            for l in 0..w {
                if prow[l] <= 0.0 {
                    xrow[l] = 0.0;
                } else {
                    rtot[l] = 0.0;
                }
            }
            // Residence times, lanes innermost. Zero-demand stations get
            // `r = 0.0` written in-pass — the value the scalar kernel's
            // up-front zeroing leaves there.
            for s in 0..stations {
                let base = (j * stations + s) * ks + lo;
                let qrow = &q[base..base + w];
                let drow = &dem[base..base + w];
                let qb = s * ks + lo;
                let qt = &qtot[qb..qb + w];
                let rrow = &mut r[qb..qb + w];
                for l in 0..w {
                    let n = prow[l];
                    if n <= 0.0 {
                        continue;
                    }
                    let d = drow[l];
                    if d <= 0.0 {
                        rrow[l] = 0.0;
                        continue;
                    }
                    let qjs = qrow[l];
                    let others = qt[l] - qjs;
                    let own = if n > 1.0 { qjs * nrow[l] / n } else { 0.0 };
                    let rv = d * (1.0 + others + own);
                    rrow[l] = rv;
                    rtot[l] += rv;
                }
            }
            // Little's law on the full cycle: one divide per lane.
            for l in 0..w {
                let n = prow[l];
                if n > 0.0 {
                    xrow[l] = n / (trow[l] + rtot[l]);
                }
            }
            // Damped queue update + residual, lanes innermost again.
            for s in 0..stations {
                let base = (j * stations + s) * ks + lo;
                let qrow = &mut q[base..base + w];
                let qb = s * ks + lo;
                let rrow = &r[qb..qb + w];
                for l in 0..w {
                    if prow[l] <= 0.0 {
                        continue;
                    }
                    let new_q = xrow[l] * rrow[l];
                    let delta = new_q - qrow[l];
                    res[l] = res[l].max(delta.abs());
                    qrow[l] += DAMPING * delta;
                }
            }
        }
    }

    /// Retire column `col`: copy its converged state out to its lane's
    /// scalar scratch, then compact by moving the last live column
    /// (`kw - 1`) into its slot. The caller shrinks the live width.
    fn retire(
        &mut self,
        col: usize,
        kw: usize,
        nc: usize,
        stations: usize,
        lanes: &mut [AmvaScratch],
        residual: &mut [f64],
    ) {
        let ks = self.stride;
        let lane = self.lane_of[col];
        let sc = &mut lanes[lane];
        for j in 0..nc {
            for s in 0..stations {
                sc.q[j * stations + s] = self.q[(j * stations + s) * ks + col];
            }
            sc.x[j] = self.x[j * ks + col];
        }
        sc.iterations = self.iters[col];
        residual[lane] = self.res[col];
        let last = kw - 1;
        if col != last {
            for j in 0..nc {
                for s in 0..stations {
                    let idx = (j * stations + s) * ks;
                    self.q[idx + col] = self.q[idx + last];
                    self.dem[idx + col] = self.dem[idx + last];
                }
                let cb = j * ks;
                self.x[cb + col] = self.x[cb + last];
                self.pop[cb + col] = self.pop[cb + last];
                self.nm1[cb + col] = self.nm1[cb + last];
                self.think[cb + col] = self.think[cb + last];
            }
            self.res[col] = self.res[last];
            self.iters[col] = self.iters[last];
            self.lane_of[col] = self.lane_of[last];
        }
    }

    /// Load the live columns of a resident window — [`Soa::pack`] minus the
    /// per-round costs the window already paid up front. The queue seed is
    /// recomputed in place (`begin`'s population spread: it depends only on
    /// class population and demand signs, both fixed across the window's
    /// rounds, so re-evaluating the same expression reproduces the same
    /// bits), demands/think/populations are re-read from `problems` (they
    /// carry the caller's per-round values), and buffers are resized
    /// without `pack`'s zero-fill: every cell the round kernel reads is
    /// either written here or written inside the round before its first
    /// read (`qtot`/`r` assign-then-use, `x` stored for every live column
    /// each round, `res` zeroed by [`Soa::round`]).
    fn pack_window(
        &mut self,
        problems: &[(&[ClassDemand], usize)],
        live: &[usize],
        nc: usize,
        stations: usize,
    ) -> usize {
        self.lane_of.clear();
        self.lane_of.extend_from_slice(live);
        let kw = live.len();
        self.stride = kw;
        self.q.resize(nc * stations * kw, 0.0);
        self.dem.resize(nc * stations * kw, 0.0);
        self.x.resize(nc * kw, 0.0);
        self.pop.resize(nc * kw, 0.0);
        self.nm1.resize(nc * kw, 0.0);
        self.think.resize(nc * kw, 0.0);
        self.qtot.resize(stations * kw, 0.0);
        self.r.resize(stations * kw, 0.0);
        self.rtot.resize(kw, 0.0);
        self.res.resize(kw, 0.0);
        self.iters.resize(kw, 0);
        for it in self.iters[..kw].iter_mut() {
            *it = 0;
        }
        for (col, &lane) in live.iter().enumerate() {
            let classes = problems[lane].0;
            for (j, c) in classes.iter().enumerate() {
                let cb = j * kw;
                self.pop[cb + col] = c.population;
                self.nm1[cb + col] = c.population - 1.0;
                self.think[cb + col] = c.think_time_s;
                let seeded = c.population > 0.0;
                let share = c.population / (stations as f64 + 1.0);
                for s in 0..stations {
                    let idx = (j * stations + s) * kw;
                    let d = c.demands_s[s];
                    self.dem[idx + col] = d;
                    self.q[idx + col] = if seeded && d > 0.0 { share } else { 0.0 };
                }
            }
        }
        kw
    }
}

/// Borrowed view of the SoA state handed to the vector round kernel
/// ([`round_chunks_impl`]): the first `kw4` live columns (a multiple of
/// 4) of every lane-contiguous array, plus the window's shape. Exists so
/// the kernel can live behind a trait-generic function without a
/// ten-argument signature.
pub(crate) struct RoundSpan<'a> {
    /// Queue lengths, `[class × station][lane]`.
    pub(crate) q: &'a mut [f64],
    /// Per-class throughput, `[class][lane]`.
    pub(crate) x: &'a mut [f64],
    /// Station demands, `[class × station][lane]`.
    pub(crate) dem: &'a [f64],
    /// Population, `[class][lane]`.
    pub(crate) pop: &'a [f64],
    /// Precomputed `population - 1.0`, `[class][lane]`.
    pub(crate) nm1: &'a [f64],
    /// Think time, `[class][lane]`.
    pub(crate) think: &'a [f64],
    /// Total queue per station, `[station][lane]` (per-round scratch).
    pub(crate) qtot: &'a mut [f64],
    /// Residence times, `[station][lane]` (per-class scratch).
    pub(crate) r: &'a mut [f64],
    /// This round's residual, `[lane]`.
    pub(crate) res: &'a mut [f64],
    /// Column stride (the window's initial live width).
    pub(crate) ks: usize,
    /// Vector-covered live width (`live width & !3`).
    pub(crate) kw4: usize,
    /// Classes per lane.
    pub(crate) nc: usize,
    /// Shared stations per lane.
    pub(crate) stations: usize,
}

/// The vector round body over the first `kw4` columns (`kw4 % 4 == 0`),
/// four lanes per step, generic over the `f64x4` backend. Per lane this
/// is exactly the scalar [`Soa::round_span`] floating-point sequence; the
/// differences are purely structural and bit-neutral:
///
/// * The station-total and residence accumulators live in registers
///   instead of memory — same adds, same order, and f64 registers hold
///   exactly the stored value (no x87-style extended precision).
/// * Per-lane branches become masks + blends. Dead lanes (population ≤ 0)
///   and zero-demand stations blend `rv = 0.0` into residence state; the
///   running residence total starts at `+0.0` and rv ≥ demand > 0 on
///   every live add, so it is never `-0.0` and adding a masked lane's
///   `+0.0` is bit-exact. A masked lane's discarded alternative (e.g. the
///   `(q·(n-1))/n` divide when `n ≤ 1`) may produce inf/NaN; IEEE 754
///   arithmetic is non-trapping and the blend throws the value away.
/// * The residual `f64::max` becomes `select(|Δ| > res, |Δ|, res)` —
///   bit-identical for the non-NaN, non-negative values the reduction
///   sees (on ties either pick is the same bits).
#[inline(always)]
pub(crate) fn round_chunks_impl<V: LaneVec>(span: RoundSpan<'_>) {
    let RoundSpan {
        q,
        x,
        dem,
        pop,
        nm1,
        think,
        qtot,
        r,
        res,
        ks,
        kw4,
        nc,
        stations,
    } = span;
    let zero = V::splat(0.0);
    let one = V::splat(1.0);
    let damp = V::splat(DAMPING);
    for l in (0..kw4).step_by(4) {
        // Total queue per station for these four lanes, accumulated in
        // class order exactly like the scalar kernel (assign, then add).
        for s in 0..stations {
            let mut qt = V::load(q, s * ks + l);
            for j in 1..nc {
                qt = qt.add(V::load(q, (j * stations + s) * ks + l));
            }
            qt.store(qtot, s * ks + l);
        }
        for j in 0..nc {
            let cb = j * ks + l;
            let n = V::load(pop, cb);
            let live = n.gt(zero);
            let nm1v = V::load(nm1, cb);
            // Residence times; the per-lane total stays in a register
            // across the station walk. Dead lanes accumulate +0.0 per
            // station — bit-neutral (see the doc comment) — and their
            // r-row scratch writes are never read.
            let mut rtot = zero;
            for s in 0..stations {
                let base = (j * stations + s) * ks + l;
                let qjs = V::load(q, base);
                let d = V::load(dem, base);
                let qt = V::load(qtot, s * ks + l);
                let others = qt.sub(qjs);
                // `(q·(n-1))/n`, left-associative like the scalar kernel.
                let own = V::select(n.gt(one), qjs.mul(nm1v).div(n), zero);
                let rv = d.mul(one.add(others).add(own));
                let rv = V::select(live.and(d.gt(zero)), rv, zero);
                rv.store(r, s * ks + l);
                rtot = rtot.add(rv);
            }
            // Little's law; dead lanes emit x = 0.0 (the scalar
            // prologue's value).
            let xv = V::select(live, n.div(V::load(think, cb).add(rtot)), zero);
            xv.store(x, cb);
            // Damped queue update + residual max, dead lanes held.
            let mut resv = V::load(res, l);
            for s in 0..stations {
                let base = (j * stations + s) * ks + l;
                let qv = V::load(q, base);
                let delta = xv.mul(V::load(r, s * ks + l)).sub(qv);
                let absd = delta.abs();
                resv = V::select(live.and(absd.gt(resv)), absd, resv);
                V::select(live, qv.add(damp.mul(delta)), qv).store(q, base);
            }
            resv.store(res, l);
        }
    }
}

impl AmvaBatch {
    /// Empty batch; lanes are created on first [`AmvaBatch::solve`].
    pub fn new() -> AmvaBatch {
        AmvaBatch::default()
    }

    /// Select the vector backend for the lane-interleaved kernel. The
    /// request is validated against the running CPU (an unsupported
    /// backend falls back to the portable lanes); every backend is
    /// bit-identical, so this is a throughput knob, never a results knob.
    pub fn set_simd_backend(&mut self, backend: SimdBackend) {
        self.backend = backend.validated();
    }

    /// The vector backend the next [`AmvaBatch::solve`] will use.
    pub fn simd_backend(&self) -> SimdBackend {
        self.backend
    }

    /// Solve `problems[i] = (classes, stations)` in lockstep, one lane per
    /// problem. Every lane runs to its own natural end — convergence, the
    /// iteration budget, or a validation failure — and afterwards lane `i`
    /// is readable through [`AmvaBatch::lane`] exactly as if
    /// [`AmvaScratch::solve`] had run that problem alone.
    ///
    /// If any lane fails, the error of the lowest-indexed failing lane is
    /// returned (deterministic, independent of convergence order); callers
    /// abandon the whole window, matching the scalar sweep's fail-fast
    /// semantics. The remaining lanes still hold valid scalar-identical
    /// state.
    pub fn solve(&mut self, problems: &[(&[ClassDemand], usize)]) -> Result<(), SimError> {
        let k = problems.len();
        while self.lanes.len() < k {
            self.lanes.push(AmvaScratch::new());
        }
        self.done.clear();
        self.done.resize(k, false);
        self.residual.clear();
        self.residual.resize(k, f64::INFINITY);
        self.errs.clear();
        self.errs.resize(k, None);

        for (i, &(classes, stations)) in problems.iter().enumerate() {
            if let Err(e) = self.lanes[i].begin(classes, stations) {
                self.done[i] = true;
                self.errs[i] = Some(e);
            }
        }

        // Shape-uniform windows (every lane the same class × station
        // counts — the sweep drivers' case, where lanes differ only in
        // demands) run the lane-interleaved SoA kernel; mixed windows fall
        // back to whole-lane rotation. Both advance every live lane by
        // exactly one scalar-identical iteration per round.
        let uniform = k >= 2
            && problems
                .windows(2)
                .all(|w| w[0].0.len() == w[1].0.len() && w[0].1 == w[1].1);
        if uniform {
            let nc = problems[0].0.len();
            let stations = problems[0].1;
            let mut kw = self
                .soa
                .pack(problems, &self.lanes, &self.done, nc, stations);
            for _round in 0..MAX_ITER {
                if kw == 0 {
                    break;
                }
                self.soa.round(kw, nc, stations, self.backend);
                let mut col = 0;
                while col < kw {
                    if self.soa.res[col] < TOL {
                        self.soa
                            .retire(col, kw, nc, stations, &mut self.lanes, &mut self.residual);
                        kw -= 1;
                    } else {
                        col += 1;
                    }
                }
            }
            // Lanes still live after MAX_ITER rounds: copy their state out
            // with the last round's residual (convergence_err decides).
            while kw > 0 {
                self.soa
                    .retire(0, kw, nc, stations, &mut self.lanes, &mut self.residual);
                kw -= 1;
            }
        } else {
            for _round in 0..MAX_ITER {
                let mut live = false;
                for (i, &(classes, _)) in problems.iter().enumerate() {
                    if self.done[i] {
                        continue;
                    }
                    let res = self.lanes[i].iterate(classes);
                    self.residual[i] = res;
                    if res < TOL {
                        self.done[i] = true;
                    } else {
                        live = true;
                    }
                }
                if !live {
                    break;
                }
            }
        }

        for (i, &(classes, _)) in problems.iter().enumerate() {
            if self.errs[i].is_some() {
                continue;
            }
            match self.lanes[i].convergence_err(self.residual[i]) {
                Ok(()) => self.lanes[i].finish(classes),
                Err(e) => self.errs[i] = Some(e),
            }
        }
        match self.errs.iter().flatten().next() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Lane `i`'s solver state after [`AmvaBatch::solve`] — read it with
    /// the scalar accessors ([`AmvaScratch::throughput`],
    /// [`AmvaScratch::queue`], [`AmvaScratch::station_util`],
    /// [`AmvaScratch::iterations`], …).
    pub fn lane(&self, i: usize) -> &AmvaScratch {
        &self.lanes[i]
    }

    /// Open a *resident window* over `problems`: validate every class once,
    /// compute the scalar queue seed once, and capture both so repeated
    /// [`AmvaBatch::solve_window`] calls over the same window skip all of
    /// that per-round bookkeeping.
    ///
    /// Returns `Ok(true)` when the window is resident-eligible (at least
    /// two lanes, shape-uniform — the sweep drivers' case). `Ok(false)`
    /// means the caller should drive per-round [`AmvaBatch::solve`] calls
    /// instead; no window is opened.
    ///
    /// Contract for the rounds that follow: the *shape* (class and station
    /// counts), each class's population, and the sign of every demand must
    /// stay fixed across `solve_window` calls — exactly what an outer
    /// contention fixed point varies nothing but demand magnitudes and
    /// think times. Under that contract each lane of every round is
    /// bit-identical to a fresh scalar [`AmvaScratch::solve`] of the same
    /// problem: the seed captured here is the seed `begin` would recompute.
    pub fn begin_window(&mut self, problems: &[(&[ClassDemand], usize)]) -> Result<bool, SimError> {
        self.win.shape = None;
        let k = problems.len();
        let uniform = k >= 2
            && problems
                .windows(2)
                .all(|w| w[0].0.len() == w[1].0.len() && w[0].1 == w[1].1);
        if !uniform {
            return Ok(false);
        }
        while self.lanes.len() < k {
            self.lanes.push(AmvaScratch::new());
        }
        self.residual.clear();
        self.residual.resize(k, f64::INFINITY);
        self.errs.clear();
        self.errs.resize(k, None);
        let nc = problems[0].0.len();
        let stations = problems[0].1;
        // One scalar validation/sizing pass per lane for the whole window;
        // the population-spread seed is outer-invariant too, but it lives
        // in `pack_window` (recomputed per round, same bits) rather than
        // being captured here.
        for (i, &(classes, st)) in problems.iter().enumerate() {
            self.lanes[i].begin_sized(classes, st)?;
        }
        self.win.shape = Some((nc, stations, k));
        Ok(true)
    }

    /// One full lockstep solve of the open resident window's `live` lanes —
    /// semantically a fresh [`AmvaBatch::solve`] restricted to those lanes,
    /// minus the validation, seeding and buffer zero-fill that
    /// [`AmvaBatch::begin_window`] already paid. `problems` must be the
    /// window's full lane array (indexed by original lane id, carrying the
    /// caller's current per-round demands/think values); `live` selects the
    /// lanes still iterating.
    ///
    /// Afterwards every live lane is readable through [`AmvaBatch::lane`]
    /// exactly as if [`AmvaScratch::solve`] had run it alone. On failure
    /// the lowest-indexed failing live lane's error is returned.
    pub fn solve_window(
        &mut self,
        problems: &[(&[ClassDemand], usize)],
        live: &[usize],
    ) -> Result<(), SimError> {
        let (nc, stations, k) = self
            .win
            .shape
            .ok_or(SimError::Internal("solve_window without an open window"))?;
        if live.iter().any(|&l| l >= k) || problems.len() != k {
            return Err(SimError::Internal("solve_window lane out of window"));
        }
        if live.is_empty() {
            return Ok(());
        }
        let mut kw = self.soa.pack_window(problems, live, nc, stations);
        for _round in 0..MAX_ITER {
            if kw == 0 {
                break;
            }
            self.soa.round(kw, nc, stations, self.backend);
            let mut col = 0;
            while col < kw {
                if self.soa.res[col] < TOL {
                    self.soa
                        .retire(col, kw, nc, stations, &mut self.lanes, &mut self.residual);
                    kw -= 1;
                } else {
                    col += 1;
                }
            }
        }
        while kw > 0 {
            self.soa
                .retire(0, kw, nc, stations, &mut self.lanes, &mut self.residual);
            kw -= 1;
        }
        let mut first_err: Option<usize> = None;
        for &i in live {
            match self.lanes[i].convergence_err(self.residual[i]) {
                Ok(()) => self.lanes[i].finish(problems[i].0),
                Err(e) => {
                    self.errs[i] = Some(e);
                    if first_err.is_none_or(|f| i < f) {
                        first_err = Some(i);
                    }
                }
            }
        }
        match first_err {
            Some(i) => match &self.errs[i] {
                Some(e) => Err(e.clone()),
                None => Ok(()),
            },
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact single-class MVA for validation.
    fn exact_mva_single(n: usize, z: f64, d: f64) -> f64 {
        let mut q = 0.0;
        let mut x = 0.0;
        for k in 1..=n {
            let r = d * (1.0 + q);
            x = k as f64 / (z + r);
            q = x * r;
        }
        x
    }

    #[test]
    fn matches_exact_mva_single_class() {
        for &n in &[1usize, 2, 4, 8] {
            for &(z, d) in &[(1.0, 1.0), (3.0, 0.5), (0.5, 2.0)] {
                let sol = solve(
                    &[ClassDemand {
                        population: n as f64,
                        think_time_s: z,
                        demands_s: vec![d],
                    }],
                    1,
                )
                .unwrap();
                let exact = exact_mva_single(n, z, d);
                let rel = (sol.throughput[0] - exact).abs() / exact;
                assert!(
                    rel < 0.08,
                    "n={n} z={z} d={d}: amva={} exact={exact}",
                    sol.throughput[0]
                );
            }
        }
    }

    #[test]
    fn n1_is_exact() {
        let sol = solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 2.0,
                demands_s: vec![3.0],
            }],
            1,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.0 / 5.0).abs() < 1e-6);
        // Disk utilisation = X·D = 0.6: the single customer leaves the disk
        // idle 40% of the time — the co-location headroom.
        assert!((sol.station_util[0] - 0.6).abs() < 1e-5);
    }

    #[test]
    fn symmetric_classes_share_equally() {
        let c = ClassDemand {
            population: 2.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let sol = solve(&[c.clone(), c], 1).unwrap();
        assert!((sol.throughput[0] - sol.throughput[1]).abs() < 1e-6);
        assert!(sol.station_util[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn colocation_fills_idle_disk_time() {
        // One I/O-ish job: Z = 1, D_disk = 1, one slot → util 0.5.
        let one = ClassDemand {
            population: 1.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        };
        let alone = solve(std::slice::from_ref(&one), 1).unwrap();
        let pair = solve(&[one.clone(), one], 1).unwrap();
        // Per-job throughput drops under sharing, but far less than 2×:
        // the pair's combined throughput exceeds the standalone throughput.
        let x_alone = alone.throughput[0];
        let x_pair = pair.throughput[0];
        assert!(x_pair < x_alone);
        assert!(
            2.0 * x_pair > 1.3 * x_alone,
            "x_pair={x_pair} x_alone={x_alone}"
        );
        assert!(pair.station_util[0] > alone.station_util[0]);
    }

    #[test]
    fn zero_population_class_is_inert() {
        let busy = ClassDemand {
            population: 4.0,
            think_time_s: 1.0,
            demands_s: vec![0.5],
        };
        let idle = ClassDemand {
            population: 0.0,
            think_time_s: 0.0,
            demands_s: vec![0.0],
        };
        let with_idle = solve(&[busy.clone(), idle], 1).unwrap();
        let alone = solve(&[busy], 1).unwrap();
        assert!((with_idle.throughput[0] - alone.throughput[0]).abs() < 1e-9);
        assert_eq!(with_idle.throughput[1], 0.0);
    }

    #[test]
    fn throughput_bounded_by_capacity_and_population() {
        let sol = solve(
            &[ClassDemand {
                population: 8.0,
                think_time_s: 0.1,
                demands_s: vec![1.0],
            }],
            1,
        )
        .unwrap();
        // Capacity bound: X ≤ 1/D.
        assert!(sol.throughput[0] <= 1.0 / 1.0 + 1e-6);
        // Heavy load should approach the capacity bound.
        assert!(sol.throughput[0] > 0.9);
    }

    #[test]
    fn pure_delay_class() {
        // No shared demand: X = N/Z exactly.
        let sol = solve(
            &[ClassDemand {
                population: 3.0,
                think_time_s: 2.0,
                demands_s: vec![0.0, 0.0],
            }],
            2,
        )
        .unwrap();
        assert!((sol.throughput[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve(
            &[ClassDemand {
                population: -1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 0.0,
                demands_s: vec![0.0],
            }],
            1
        )
        .is_err());
        assert!(solve(
            &[ClassDemand {
                population: 1.0,
                think_time_s: 1.0,
                demands_s: vec![1.0, 1.0],
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_problem_sizes() {
        // One scratch solving a 2-class problem, then a 1-class problem,
        // then the 2-class problem again must agree to the bit with fresh
        // solves: clear+resize reuse may never leak state between solves.
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let mut scratch = AmvaScratch::new();
        for classes in [vec![a.clone(), b.clone()], vec![b.clone()], vec![a, b]] {
            let stations = classes[0].demands_s.len();
            scratch.solve(&classes, stations).unwrap();
            let fresh = solve(&classes, stations).unwrap();
            assert_eq!(scratch.iterations(), fresh.iterations);
            for j in 0..classes.len() {
                assert_eq!(
                    scratch.throughput()[j].to_bits(),
                    fresh.throughput[j].to_bits()
                );
                for s in 0..stations {
                    assert_eq!(scratch.queue(j, s).to_bits(), fresh.queue[j][s].to_bits());
                }
            }
            for s in 0..stations {
                assert_eq!(
                    scratch.station_util()[s].to_bits(),
                    fresh.station_util[s].to_bits()
                );
                assert_eq!(
                    scratch.station_queue()[s].to_bits(),
                    fresh.station_queue[s].to_bits()
                );
            }
        }
    }

    /// A small family of unrelated problems exercising distinct code paths:
    /// different station counts, zero-population classes, zero-demand
    /// stations, and convergence speeds.
    fn batch_problem_set() -> Vec<Vec<ClassDemand>> {
        vec![
            vec![ClassDemand {
                population: 2.0,
                think_time_s: 3.0,
                demands_s: vec![1.0],
            }],
            vec![
                ClassDemand {
                    population: 4.0,
                    think_time_s: 0.5,
                    demands_s: vec![0.8, 0.1],
                },
                ClassDemand {
                    population: 2.0,
                    think_time_s: 2.0,
                    demands_s: vec![0.1, 0.9],
                },
            ],
            vec![ClassDemand {
                population: 8.0,
                think_time_s: 0.1,
                demands_s: vec![2.0, 0.0, 0.4],
            }],
            vec![
                ClassDemand {
                    population: 0.0,
                    think_time_s: 0.0,
                    demands_s: vec![0.0, 0.0],
                },
                ClassDemand {
                    population: 3.0,
                    think_time_s: 1.0,
                    demands_s: vec![0.5, 0.5],
                },
            ],
            vec![ClassDemand {
                population: 1.0,
                think_time_s: 0.0,
                demands_s: vec![1.5],
            }],
            vec![ClassDemand {
                population: 6.0,
                think_time_s: 4.0,
                demands_s: vec![0.2, 0.2, 0.2, 0.2],
            }],
            vec![ClassDemand {
                population: 3.0,
                think_time_s: 2.0,
                demands_s: vec![0.0, 0.0],
            }],
            vec![ClassDemand {
                population: 5.0,
                think_time_s: 0.25,
                demands_s: vec![1.1, 0.7],
            }],
        ]
    }

    #[test]
    fn batch_lanes_are_bit_identical_to_scalar_at_every_width() {
        let problems = batch_problem_set();
        let mut batch = AmvaBatch::new();
        for width in 1..=problems.len() {
            // Reuse one batch across widths: buffer reuse may not leak
            // state between windows, mirroring the scratch-reuse contract.
            for window in problems.chunks(width) {
                let probs: Vec<(&[ClassDemand], usize)> = window
                    .iter()
                    .map(|c| (c.as_slice(), c[0].demands_s.len()))
                    .collect();
                batch.solve(&probs).unwrap();
                for (i, classes) in window.iter().enumerate() {
                    let stations = classes[0].demands_s.len();
                    let mut scalar = AmvaScratch::new();
                    scalar.solve(classes, stations).unwrap();
                    let lane = batch.lane(i);
                    assert_eq!(lane.iterations(), scalar.iterations(), "width {width}");
                    for j in 0..classes.len() {
                        assert_eq!(
                            lane.throughput()[j].to_bits(),
                            scalar.throughput()[j].to_bits()
                        );
                        for s in 0..stations {
                            assert_eq!(lane.queue(j, s).to_bits(), scalar.queue(j, s).to_bits());
                        }
                    }
                    for s in 0..stations {
                        assert_eq!(
                            lane.station_util()[s].to_bits(),
                            scalar.station_util()[s].to_bits()
                        );
                        assert_eq!(
                            lane.station_queue()[s].to_bits(),
                            scalar.station_queue()[s].to_bits()
                        );
                    }
                }
            }
        }
    }

    /// Shape-uniform family (2 classes × 3 stations throughout) so the
    /// batch takes the lane-interleaved kernel: varied populations (zero,
    /// one, fractional, heavy), zero-demand stations, varied convergence
    /// speeds.
    fn uniform_problem_set() -> Vec<Vec<ClassDemand>> {
        let mk = |pop_a: f64, pop_b: f64, da: [f64; 3], db: [f64; 3], za: f64, zb: f64| {
            vec![
                ClassDemand {
                    population: pop_a,
                    think_time_s: za,
                    demands_s: da.to_vec(),
                },
                ClassDemand {
                    population: pop_b,
                    think_time_s: zb,
                    demands_s: db.to_vec(),
                },
            ]
        };
        vec![
            mk(2.0, 3.0, [1.0, 0.2, 0.0], [0.3, 0.9, 0.1], 3.0, 1.0),
            mk(8.0, 1.0, [2.0, 0.0, 0.4], [0.1, 0.1, 0.1], 0.1, 5.0),
            mk(0.0, 3.0, [0.0, 0.0, 0.0], [0.5, 0.5, 0.2], 0.0, 1.0),
            mk(1.0, 1.0, [1.5, 0.0, 0.0], [0.0, 1.5, 0.0], 0.0, 0.0),
            mk(6.0, 2.5, [0.2, 0.2, 0.2], [0.4, 0.0, 0.8], 4.0, 0.25),
            mk(5.0, 4.0, [1.1, 0.7, 0.3], [0.9, 1.3, 0.0], 0.25, 0.5),
            mk(3.0, 0.0, [0.0, 0.0, 0.9], [0.0, 0.0, 0.0], 2.0, 0.0),
            mk(4.0, 4.0, [0.8, 0.1, 0.5], [0.1, 0.9, 0.5], 0.5, 2.0),
            // Second half: 16 lanes total, so the width sweep exercises
            // full four-lane vector windows plus every tail residue
            // (live count ≡ 1, 2, 3 mod 4) and mid-round compaction.
            mk(7.0, 2.0, [0.6, 1.4, 0.2], [0.2, 0.3, 1.1], 1.5, 0.75),
            mk(1.5, 1.5, [0.4, 0.4, 0.4], [0.7, 0.0, 0.7], 0.0, 3.0),
            mk(9.0, 0.5, [1.8, 0.1, 0.0], [0.0, 0.2, 0.6], 0.2, 0.9),
            mk(0.5, 6.0, [0.3, 0.0, 0.2], [1.2, 0.8, 0.4], 6.0, 0.1),
            mk(2.5, 2.5, [0.0, 1.0, 1.0], [1.0, 0.0, 1.0], 1.0, 1.0),
            mk(12.0, 3.0, [0.9, 0.9, 0.9], [0.3, 0.6, 0.9], 0.4, 2.5),
            mk(4.5, 0.0, [0.5, 0.7, 0.0], [0.0, 0.0, 0.0], 0.8, 0.0),
            mk(3.5, 5.5, [1.3, 0.2, 0.8], [0.6, 1.1, 0.2], 2.2, 0.3),
        ]
    }

    #[test]
    fn interleaved_kernel_is_bit_identical_to_scalar_at_every_width() {
        let problems = uniform_problem_set();
        let mut batch = AmvaBatch::new();
        for width in 1..=problems.len() {
            for window in problems.chunks(width) {
                let probs: Vec<(&[ClassDemand], usize)> =
                    window.iter().map(|c| (c.as_slice(), 3)).collect();
                batch.solve(&probs).unwrap();
                for (i, classes) in window.iter().enumerate() {
                    let mut scalar = AmvaScratch::new();
                    scalar.solve(classes, 3).unwrap();
                    let lane = batch.lane(i);
                    assert_eq!(lane.iterations(), scalar.iterations(), "width {width}");
                    for j in 0..classes.len() {
                        assert_eq!(
                            lane.throughput()[j].to_bits(),
                            scalar.throughput()[j].to_bits()
                        );
                        for s in 0..3 {
                            assert_eq!(lane.queue(j, s).to_bits(), scalar.queue(j, s).to_bits());
                        }
                    }
                    for s in 0..3 {
                        assert_eq!(
                            lane.station_util()[s].to_bits(),
                            scalar.station_util()[s].to_bits()
                        );
                        assert_eq!(
                            lane.station_queue()[s].to_bits(),
                            scalar.station_queue()[s].to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_simd_backend_is_bit_identical_to_the_scalar_backend() {
        let problems = uniform_problem_set();
        let mut scalar_batch = AmvaBatch::new();
        scalar_batch.set_simd_backend(SimdBackend::Scalar);
        assert_eq!(scalar_batch.simd_backend(), SimdBackend::Scalar);
        // Portable always; Avx2 validates down to Portable off-x86, so
        // on every machine this covers each backend that can run here.
        for backend in [SimdBackend::Portable, SimdBackend::Avx2] {
            let mut batch = AmvaBatch::new();
            batch.set_simd_backend(backend);
            for width in 1..=problems.len() {
                for window in problems.chunks(width) {
                    let probs: Vec<(&[ClassDemand], usize)> =
                        window.iter().map(|c| (c.as_slice(), 3)).collect();
                    batch.solve(&probs).unwrap();
                    scalar_batch.solve(&probs).unwrap();
                    for (i, classes) in window.iter().enumerate() {
                        let (v, s) = (batch.lane(i), scalar_batch.lane(i));
                        assert_eq!(
                            v.iterations(),
                            s.iterations(),
                            "backend {:?} width {width} lane {i}",
                            batch.simd_backend()
                        );
                        for j in 0..classes.len() {
                            assert_eq!(v.throughput()[j].to_bits(), s.throughput()[j].to_bits());
                            for st in 0..3 {
                                assert_eq!(v.queue(j, st).to_bits(), s.queue(j, st).to_bits());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_reports_lowest_failing_lane_and_keeps_good_lanes() {
        let good = vec![ClassDemand {
            population: 2.0,
            think_time_s: 3.0,
            demands_s: vec![1.0],
        }];
        let bad = vec![ClassDemand {
            population: -1.0,
            think_time_s: 1.0,
            demands_s: vec![1.0],
        }];
        let mut batch = AmvaBatch::new();
        let err = batch
            .solve(&[(good.as_slice(), 1), (bad.as_slice(), 1)])
            .unwrap_err();
        let mut scalar = AmvaScratch::new();
        let scalar_err = scalar.solve(&bad, 1).unwrap_err();
        assert_eq!(err, scalar_err);
        // The good lane still finished with scalar-identical state.
        scalar.solve(&good, 1).unwrap();
        assert_eq!(
            batch.lane(0).throughput()[0].to_bits(),
            scalar.throughput()[0].to_bits()
        );
    }

    #[test]
    #[ignore = "timing probe, run with --release -- --ignored --nocapture"]
    fn timing_probe_interleaved_vs_scalar() {
        // Equal-shape, similar-iteration-count lanes: isolates the
        // interleaved kernel's ILP from lane drain effects.
        let mk = |scale: f64| {
            vec![
                ClassDemand {
                    population: 6.0,
                    think_time_s: 0.3,
                    demands_s: vec![0.9 * scale, 0.4, 0.2],
                },
                ClassDemand {
                    population: 4.0,
                    think_time_s: 0.5,
                    demands_s: vec![0.2, 0.8 * scale, 0.3],
                },
            ]
        };
        let problems: Vec<Vec<ClassDemand>> = (0..16).map(|i| mk(1.0 + 0.01 * i as f64)).collect();
        let mut scratch = AmvaScratch::new();
        let reps = 10_000usize;
        let t0 = std::time::Instant::now();
        let mut iters = 0usize;
        for _ in 0..reps {
            for p in &problems {
                scratch.solve(p, 3).unwrap();
                iters += scratch.iterations();
            }
        }
        let scalar_s = t0.elapsed().as_secs_f64();
        println!(
            "scalar: {scalar_s:.3}s ({iters} iters), {:.1} ns/iter",
            1e9 * scalar_s / iters as f64
        );
        for backend in [SimdBackend::Scalar, SimdBackend::detect()] {
            let mut batch = AmvaBatch::new();
            batch.set_simd_backend(backend);
            for width in [2usize, 4, 8, 12, 16] {
                let t0 = std::time::Instant::now();
                let mut biters = 0usize;
                for _ in 0..reps {
                    for window in problems.chunks(width) {
                        let probs: Vec<(&[ClassDemand], usize)> =
                            window.iter().map(|p| (p.as_slice(), 3)).collect();
                        batch.solve(&probs).unwrap();
                        for i in 0..probs.len() {
                            biters += batch.lane(i).iterations();
                        }
                    }
                }
                let batch_s = t0.elapsed().as_secs_f64();
                println!(
                    "batch{width} [{}]: {batch_s:.3}s ({biters} iters), speedup {:.2}x, {:.1} ns/iter",
                    backend.name(),
                    scalar_s / batch_s,
                    1e9 * batch_s / biters as f64
                );
            }
        }
    }

    #[test]
    fn two_stations_multiclass_utilisation_valid() {
        let a = ClassDemand {
            population: 4.0,
            think_time_s: 0.5,
            demands_s: vec![0.8, 0.1],
        };
        let b = ClassDemand {
            population: 2.0,
            think_time_s: 2.0,
            demands_s: vec![0.1, 0.9],
        };
        let sol = solve(&[a, b], 2).unwrap();
        for u in &sol.station_util {
            assert!(*u >= 0.0 && *u <= 1.0 + 1e-9);
        }
        assert!(sol.throughput.iter().all(|x| *x > 0.0));
    }
}
