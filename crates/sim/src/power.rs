//! Wall-power model and energy integration.
//!
//! The paper measures whole-box power with a Wattsup PRO meter at one-second
//! granularity and subtracts idle power before computing EDP (§2.5). We mirror
//! both: [`PowerModel`] produces the instantaneous *dynamic* (idle-subtracted)
//! wall power from the executor's utilisation state, and [`EnergyMeter`]
//! integrates it, optionally emitting the same 1 Hz sample trace a Wattsup
//! would log.

use crate::node::NodeSpec;

/// Instantaneous utilisation-state → power decomposition, watts.
///
/// All fields are *dynamic* contributions; node idle power is accounted
/// separately (and subtracted, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Cores actively executing instructions.
    pub core_busy_w: f64,
    /// Cores allocated but blocked on I/O.
    pub core_iowait_w: f64,
    /// Frequency-independent tax of powered-up cores.
    pub core_static_w: f64,
    /// Disk activity.
    pub disk_w: f64,
    /// Memory-bandwidth activity.
    pub mem_w: f64,
    /// NIC activity (cluster shuffles).
    pub nic_w: f64,
}

impl PowerBreakdown {
    /// Total dynamic power, watts.
    #[inline]
    pub fn total(&self) -> f64 {
        self.core_busy_w
            + self.core_iowait_w
            + self.core_static_w
            + self.disk_w
            + self.mem_w
            + self.nic_w
    }
}

/// Computes [`PowerBreakdown`]s from executor utilisation state.
#[derive(Debug, Clone)]
pub struct PowerModel {
    spec: NodeSpec,
}

impl PowerModel {
    /// Build a model for one node.
    pub fn new(spec: NodeSpec) -> PowerModel {
        PowerModel { spec }
    }

    /// Underlying node spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Dynamic power for a utilisation snapshot.
    ///
    /// * `busy_cores_at` — list of `(busy core-equivalents, dynamic V²f
    ///   factor)` pairs, one per co-located job (each job may run at its own
    ///   frequency — the C2758 exposes per-module P-states).
    /// * `allocated_cores` — total cores handed to jobs (busy + iowait).
    /// * `disk_util`, `mem_bw_util`, `nic_util` — shared-resource
    ///   utilisations in `[0, 1]`.
    pub fn dynamic_power(
        &self,
        busy_cores_at: &[(f64, f64)],
        allocated_cores: f64,
        disk_util: f64,
        mem_bw_util: f64,
        nic_util: f64,
    ) -> PowerBreakdown {
        let busy_total: f64 = busy_cores_at.iter().map(|(c, _)| *c).sum();
        let core_busy_w: f64 = busy_cores_at
            .iter()
            .map(|(cores, dyn_factor)| cores * self.spec.core_busy_power_w * dyn_factor)
            .sum();
        let iowait_cores = (allocated_cores - busy_total).max(0.0);
        PowerBreakdown {
            core_busy_w,
            core_iowait_w: iowait_cores * self.spec.core_iowait_power_w,
            core_static_w: allocated_cores * self.spec.core_static_power_w,
            disk_w: disk_util.clamp(0.0, 1.0) * self.spec.disk.active_power_w,
            mem_w: mem_bw_util.clamp(0.0, 1.0) * self.spec.mem.active_power_w,
            nic_w: nic_util.clamp(0.0, 1.0),
        }
    }

    /// Idle (subtracted) wall power of the node, watts.
    #[inline]
    pub fn idle_power_w(&self) -> f64 {
        self.spec.idle_power_w
    }
}

/// Piecewise-constant power integrator with optional 1 Hz sampling, the
/// simulated counterpart of the Wattsup PRO logger.
///
/// ```
/// use ecost_sim::EnergyMeter;
///
/// let mut meter = EnergyMeter::with_trace();
/// meter.record(2.0, 10.0); // 2 s at 10 W
/// meter.record(1.0, 4.0);  // 1 s at 4 W
/// assert_eq!(meter.energy_j(), 24.0);
/// assert_eq!(meter.average_power_w(), 8.0);
/// assert_eq!(meter.trace().unwrap(), &[10.0, 10.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    energy_j: f64,
    elapsed_s: f64,
    /// 1 Hz samples (average watts within each whole second), if enabled.
    samples: Option<Vec<f64>>,
    /// Partial accumulation for the current sample second.
    partial_j: f64,
    partial_s: f64,
}

impl EnergyMeter {
    /// A meter that only integrates energy.
    pub fn new() -> EnergyMeter {
        EnergyMeter {
            energy_j: 0.0,
            elapsed_s: 0.0,
            samples: None,
            partial_j: 0.0,
            partial_s: 0.0,
        }
    }

    /// A meter that additionally records a 1-second sample trace.
    pub fn with_trace() -> EnergyMeter {
        EnergyMeter {
            samples: Some(Vec::new()),
            ..EnergyMeter::new()
        }
    }

    /// Record `watts` held constant for `seconds`.
    pub fn record(&mut self, seconds: f64, watts: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "bad duration");
        assert!(watts >= 0.0 && watts.is_finite(), "bad power");
        self.energy_j += watts * seconds;
        self.elapsed_s += seconds;
        if let Some(samples) = self.samples.as_mut() {
            let mut remaining = seconds;
            while remaining > 0.0 {
                let room = 1.0 - self.partial_s;
                let take = remaining.min(room);
                self.partial_j += watts * take;
                self.partial_s += take;
                remaining -= take;
                if self.partial_s >= 1.0 - 1e-12 {
                    samples.push(self.partial_j / self.partial_s);
                    self.partial_j = 0.0;
                    self.partial_s = 0.0;
                }
            }
        }
    }

    /// Total integrated energy, joules.
    #[inline]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Total integrated time, seconds.
    #[inline]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Time-averaged power, watts (0 if nothing recorded).
    #[inline]
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.energy_j / self.elapsed_s
        } else {
            0.0
        }
    }

    /// The 1 Hz trace, if enabled. The trailing partial second (if any) is
    /// not included.
    pub fn trace(&self) -> Option<&[f64]> {
        self.samples.as_deref()
    }
}

impl Default for EnergyMeter {
    fn default() -> Self {
        EnergyMeter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::Frequency;

    #[test]
    fn breakdown_total_sums_fields() {
        let b = PowerBreakdown {
            core_busy_w: 1.0,
            core_iowait_w: 2.0,
            core_static_w: 3.0,
            disk_w: 4.0,
            mem_w: 5.0,
            nic_w: 6.0,
        };
        assert!((b.total() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn busy_cores_cost_more_than_iowait() {
        let pm = PowerModel::new(NodeSpec::atom_c2758());
        let f = Frequency::F2_4.dynamic_factor();
        let busy = pm.dynamic_power(&[(4.0, f)], 4.0, 0.0, 0.0, 0.0);
        let wait = pm.dynamic_power(&[(0.0, f)], 4.0, 0.0, 0.0, 0.0);
        assert!(busy.total() > 3.0 * wait.total());
        assert_eq!(busy.core_iowait_w, 0.0);
        assert!(wait.core_iowait_w > 0.0);
    }

    #[test]
    fn frequency_lowers_busy_power() {
        let pm = PowerModel::new(NodeSpec::atom_c2758());
        let hi = pm.dynamic_power(
            &[(8.0, Frequency::F2_4.dynamic_factor())],
            8.0,
            0.0,
            0.0,
            0.0,
        );
        let lo = pm.dynamic_power(
            &[(8.0, Frequency::F1_2.dynamic_factor())],
            8.0,
            0.0,
            0.0,
            0.0,
        );
        assert!(lo.core_busy_w < 0.35 * hi.core_busy_w);
        // Static component is unchanged.
        assert!((lo.core_static_w - hi.core_static_w).abs() < 1e-12);
    }

    #[test]
    fn utilisations_are_clamped() {
        let pm = PowerModel::new(NodeSpec::atom_c2758());
        let b = pm.dynamic_power(&[], 0.0, 1.7, -0.3, 0.0);
        assert!((b.disk_w - pm.spec().disk.active_power_w).abs() < 1e-12);
        assert_eq!(b.mem_w, 0.0);
    }

    #[test]
    fn meter_integrates_energy() {
        let mut m = EnergyMeter::new();
        m.record(2.0, 10.0);
        m.record(0.5, 4.0);
        assert!((m.energy_j() - 22.0).abs() < 1e-12);
        assert!((m.elapsed_s() - 2.5).abs() < 1e-12);
        assert!((m.average_power_w() - 8.8).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reports_zero_power() {
        let m = EnergyMeter::new();
        assert_eq!(m.average_power_w(), 0.0);
    }

    #[test]
    fn trace_emits_one_hz_samples() {
        let mut m = EnergyMeter::with_trace();
        m.record(1.5, 10.0); // fills sample 0 fully, half of sample 1
        m.record(0.5, 20.0); // completes sample 1: avg = (5 + 10)/1 = 15
        m.record(2.0, 1.0); // two samples of 1 W
        let t = m.trace().unwrap();
        assert_eq!(t.len(), 4);
        assert!((t[0] - 10.0).abs() < 1e-9);
        assert!((t[1] - 15.0).abs() < 1e-9);
        assert!((t[2] - 1.0).abs() < 1e-9);
        assert!((t[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_energy_matches_integral() {
        let mut m = EnergyMeter::with_trace();
        for i in 0..10 {
            m.record(0.7, i as f64);
        }
        let trace_energy: f64 = m.trace().unwrap().iter().sum();
        // Trace covers whole seconds only; 7 s of 7 samples vs 7 s elapsed.
        assert_eq!(m.trace().unwrap().len(), 7);
        assert!(trace_energy <= m.energy_j() + 1e-9);
    }
}
