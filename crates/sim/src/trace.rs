//! Power-trace statistics.
//!
//! The Wattsup-style 1 Hz samples from [`crate::power::EnergyMeter`] are what
//! a datacenter operator actually sees; this module provides the summary
//! statistics the characterisation sections of the paper quote (average,
//! peak, percentiles) and a simple peak-window search for provisioning
//! analyses.

/// Summary statistics of a power trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of samples.
    pub samples: usize,
    /// Mean power, W.
    pub mean_w: f64,
    /// Peak sample, W.
    pub peak_w: f64,
    /// Minimum sample, W.
    pub min_w: f64,
    /// 95th-percentile sample, W.
    pub p95_w: f64,
}

/// Compute summary statistics; `None` on an empty trace.
pub fn stats(trace: &[f64]) -> Option<TraceStats> {
    if trace.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = trace.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let mean_w = sorted.iter().sum::<f64>() / n as f64;
    // Nearest-rank percentile.
    let p95 = sorted[((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1];
    Some(TraceStats {
        samples: n,
        mean_w,
        peak_w: sorted[n - 1],
        min_w: sorted[0],
        p95_w: p95,
    })
}

/// The `window`-sample span with the highest average power; returns
/// `(start index, average W)`. `None` if the trace is shorter than the
/// window.
pub fn peak_window(trace: &[f64], window: usize) -> Option<(usize, f64)> {
    if window == 0 || trace.len() < window {
        return None;
    }
    let mut sum: f64 = trace[..window].iter().sum();
    let mut best = (0usize, sum);
    for i in window..trace.len() {
        sum += trace[i] - trace[i - window];
        if sum > best.1 {
            best = (i + 1 - window, sum);
        }
    }
    Some((best.0, best.1 / window as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_trace() {
        let trace: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = stats(&trace).expect("non-empty");
        assert_eq!(s.samples, 100);
        assert!((s.mean_w - 50.5).abs() < 1e-12);
        assert_eq!(s.peak_w, 100.0);
        assert_eq!(s.min_w, 1.0);
        assert_eq!(s.p95_w, 95.0);
    }

    #[test]
    fn empty_trace_is_none() {
        assert_eq!(stats(&[]), None);
        assert_eq!(peak_window(&[], 3), None);
        assert_eq!(peak_window(&[1.0, 2.0], 3), None);
        assert_eq!(peak_window(&[1.0], 0), None);
    }

    #[test]
    fn peak_window_finds_burst() {
        let mut trace = vec![1.0; 20];
        trace[7] = 10.0;
        trace[8] = 12.0;
        trace[9] = 11.0;
        let (start, avg) = peak_window(&trace, 3).expect("long enough");
        assert_eq!(start, 7);
        assert!((avg - 11.0).abs() < 1e-12);
    }

    #[test]
    fn integrates_with_energy_meter() {
        let mut m = crate::power::EnergyMeter::with_trace();
        m.record(5.0, 10.0);
        m.record(5.0, 30.0);
        let s = stats(m.trace().expect("trace enabled")).expect("samples");
        assert_eq!(s.samples, 10);
        assert!((s.mean_w - 20.0).abs() < 1e-9);
        assert_eq!(s.peak_w, 30.0);
    }
}
