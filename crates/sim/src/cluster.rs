//! Cluster model: `n` identical nodes joined by a 1 GbE interconnect, as in
//! the paper's 1/2/4/8-node scalability study (§8).

use crate::node::NodeSpec;

/// Specification of a homogeneous cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Number of nodes (the paper studies 1, 2, 4 and 8).
    pub nodes: usize,
    /// Per-node NIC bandwidth, MB/s (1 GbE ≈ 118 MB/s of goodput). Shuffle
    /// traffic between nodes is bounded by this.
    pub nic_bw_mbps: f64,
    /// Power drawn by the network fabric per node while shuffling, watts.
    pub nic_active_power_w: f64,
}

impl ClusterSpec {
    /// The paper's testbed: 8 Atom C2758 nodes on gigabit Ethernet.
    pub fn atom_cluster(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            node: NodeSpec::atom_c2758(),
            nodes,
            nic_bw_mbps: 118.0,
            nic_active_power_w: 1.2,
        }
    }

    /// Fraction of shuffle traffic that crosses the network when a job runs
    /// on `span` of the cluster's nodes: with map outputs spread uniformly,
    /// a reducer pulls `(span-1)/span` of its input remotely.
    pub fn remote_shuffle_fraction(span: usize) -> f64 {
        if span <= 1 {
            0.0
        } else {
            (span as f64 - 1.0) / span as f64
        }
    }

    /// Total idle power of the cluster, watts.
    pub fn idle_power_w(&self) -> f64 {
        self.node.idle_power_w * self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fraction_bounds() {
        assert_eq!(ClusterSpec::remote_shuffle_fraction(1), 0.0);
        assert!((ClusterSpec::remote_shuffle_fraction(2) - 0.5).abs() < 1e-12);
        let f8 = ClusterSpec::remote_shuffle_fraction(8);
        assert!(f8 > 0.8 && f8 < 1.0);
    }

    #[test]
    fn idle_power_scales_with_nodes() {
        let c1 = ClusterSpec::atom_cluster(1);
        let c8 = ClusterSpec::atom_cluster(8);
        assert!((c8.idle_power_w() - 8.0 * c1.idle_power_w()).abs() < 1e-9);
    }
}
