//! Deterministic randomness helpers.
//!
//! Every stochastic element of the workspace — counter measurement noise, MLP
//! weight initialisation, synthetic workload generation — draws from a seeded
//! [`rand::rngs::StdRng`] derived here, so every experiment is reproducible
//! byte-for-byte from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workspace-wide default seed for the experiment binaries.
pub const DEFAULT_SEED: u64 = 0x0EC0_57C0_DE19_2019;

/// Build a deterministic RNG from a root seed and a stream label.
///
/// Different labels give statistically independent streams, so e.g. counter
/// noise and MLP initialisation can't alias even when both use the root seed.
pub fn stream(root_seed: u64, label: &str) -> StdRng {
    // FNV-1a over the label folded into the root seed: cheap, stable, and
    // good enough for decorrelating a handful of named streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(root_seed ^ h)
}

/// A multiplicative noise factor `1 + ε`, with `ε` uniform in
/// `[-relative, +relative]`. Used to model measurement jitter on synthetic
/// performance counters.
pub fn noise_factor<R: Rng>(rng: &mut R, relative: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&relative));
    1.0 + rng.gen_range(-relative..=relative)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u32> = stream(1, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = stream(1, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_decorrelate_streams() {
        let a: Vec<u32> = stream(1, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = stream(1, "y")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn seeds_decorrelate_streams() {
        let a: Vec<u32> = stream(1, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = stream(2, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn noise_factor_bounds() {
        let mut rng = stream(7, "noise");
        for _ in 0..1000 {
            let f = noise_factor(&mut rng, 0.05);
            assert!((0.95..=1.05).contains(&f));
        }
    }
}
