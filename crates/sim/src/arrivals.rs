//! Seeded synthetic arrival traces for open-cluster experiments.
//!
//! Public cluster traces (Alibaba 2018, Google 2019) share three robust
//! regularities this generator reproduces without shipping gigabytes of
//! trace data:
//!
//! * **phased arrival rates** — load swings diurnally; a trace is a cycle
//!   of phases, each a Poisson process at its own rate. Within a phase the
//!   gaps are exponential; phase boundaries redraw the gap at the new
//!   rate, which is statistically exact for a piecewise-constant Poisson
//!   process (memorylessness: the residual gap at a boundary is itself
//!   exponential).
//! * **a heavy-tailed application mix** — a few application types dominate
//!   submissions; the rest form a long tail. App picks follow a Zipf
//!   distribution over the catalog ranks (inverted CDF over the finite
//!   support, no rejection loop).
//! * **heavy-tailed input sizes** — most jobs are small, a few are huge.
//!   Sizes draw from a bounded Pareto via inverse transform, so the tail
//!   is real but the support stays inside what a node can hold.
//!
//! Everything derives from one root seed through [`crate::rng::stream`],
//! so a trace is reproducible byte-for-byte: the scale-out bench replays
//! the same trace twice in CI and diffs the reports.

use crate::error::SimError;
use crate::rng::stream;
use rand::rngs::StdRng;
use rand::Rng;

/// One constant-rate segment of the arrival cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPhase {
    /// Phase length, simulated seconds.
    pub duration_s: f64,
    /// Mean arrival rate during the phase, jobs per second. A rate of
    /// exactly 0 is a *silent* phase (a maintenance window, a dead
    /// trough): no arrivals occur inside it and the generator
    /// fast-forwards to the next phase. At least one phase of the cycle
    /// must have a positive rate, or the trace could never emit anything.
    pub rate_per_s: f64,
}

/// Specification of a synthetic trace. The phase cycle repeats for as
/// long as it takes to emit the requested number of arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Root seed; every stream of the generator derives from it.
    pub seed: u64,
    /// The arrival-rate cycle (e.g. trough / ramp / peak).
    pub phases: Vec<ArrivalPhase>,
    /// Catalog size: app indices are drawn from `0..apps`.
    pub apps: usize,
    /// Zipf exponent over app ranks; larger skews harder onto rank 0.
    pub zipf_exponent: f64,
    /// Inclusive bounds for job input sizes, MB.
    pub size_range_mb: (f64, f64),
    /// Pareto tail index for the size distribution; smaller is
    /// heavier-tailed. Typical trace fits land in 1.1–2.5.
    pub size_tail_alpha: f64,
}

/// One generated arrival: when, which catalog app (by index), how big.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceArrival {
    /// Arrival time, simulated seconds (non-decreasing across the trace).
    pub at_s: f64,
    /// Index into the app catalog, `0..spec.apps`, Zipf-ranked.
    pub app: usize,
    /// Input size, MB, within `spec.size_range_mb`.
    pub size_mb: f64,
}

impl TraceSpec {
    /// An Alibaba-flavoured preset over a catalog of `apps` applications:
    /// a three-phase trough / ramp / peak cycle whose peak rate is set by
    /// `peak_rate_per_s`, a Zipf-1.1 app mix and bounded-Pareto sizes
    /// between 64 MB and 2 GB with tail index 1.5.
    pub fn alibaba_like(seed: u64, apps: usize, peak_rate_per_s: f64) -> TraceSpec {
        TraceSpec {
            seed,
            phases: vec![
                ArrivalPhase {
                    duration_s: 1200.0,
                    rate_per_s: peak_rate_per_s * 0.25,
                },
                ArrivalPhase {
                    duration_s: 600.0,
                    rate_per_s: peak_rate_per_s * 0.6,
                },
                ArrivalPhase {
                    duration_s: 1200.0,
                    rate_per_s: peak_rate_per_s,
                },
            ],
            apps,
            zipf_exponent: 1.1,
            size_range_mb: (64.0, 2048.0),
            size_tail_alpha: 1.5,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.apps == 0 {
            return Err(SimError::InvalidDemand(
                "trace needs a non-empty app catalog",
            ));
        }
        if self.phases.is_empty() {
            return Err(SimError::InvalidDemand("trace needs at least one phase"));
        }
        for p in &self.phases {
            if !(p.duration_s.is_finite() && p.duration_s > 0.0) {
                return Err(SimError::InvalidDemand(
                    "phase durations must be finite and positive",
                ));
            }
            if !(p.rate_per_s.is_finite() && p.rate_per_s >= 0.0) {
                return Err(SimError::InvalidDemand(
                    "phase rates must be finite and non-negative",
                ));
            }
        }
        if !self.phases.iter().any(|p| p.rate_per_s > 0.0) {
            return Err(SimError::InvalidDemand(
                "at least one phase needs a positive rate",
            ));
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent > 0.0) {
            return Err(SimError::InvalidDemand(
                "zipf exponent must be finite and positive",
            ));
        }
        let (lo, hi) = self.size_range_mb;
        if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo) {
            return Err(SimError::InvalidDemand(
                "size range must be finite with 0 < lo <= hi",
            ));
        }
        if !(self.size_tail_alpha.is_finite() && self.size_tail_alpha > 0.0) {
            return Err(SimError::InvalidDemand(
                "size tail index must be finite and positive",
            ));
        }
        Ok(())
    }
}

/// Pull-based streaming generator over a [`TraceSpec`]: the exact arrival
/// sequence [`generate`] materializes, produced one arrival per [`next`]
/// call from O(catalog) resident state. The phase cycle repeats forever,
/// so the iterator never ends — bound it with [`Iterator::take`] (or pull
/// chunks with [`TraceStream::next_chunk`]). A million-arrival replay
/// holds one arrival at a time instead of a gigabyte of trace.
///
/// Determinism contract: for any `spec`, any split of pulls into chunks
/// (sizes 1, 7, 4096, …) yields the byte-identical sequence the eager
/// path yields — pinned by a property test. `generate` itself is now a
/// bounded collect over this iterator.
///
/// [`next`]: Iterator::next
#[derive(Debug, Clone)]
pub struct TraceStream {
    gaps: StdRng,
    picks: StdRng,
    sizes: StdRng,
    phases: Vec<ArrivalPhase>,
    apps: usize,
    /// Zipf CDF over the finite catalog: mass(rank r) ∝ (r+1)^-s.
    zipf_cdf: Vec<f64>,
    zipf_total: f64,
    lo: f64,
    hi: f64,
    alpha: f64,
    /// Bounded-Pareto inverse CDF precomputation.
    tail_ratio: f64,
    cycle_s: f64,
    t: f64,
    phase: usize,
    /// Absolute end time of the current phase (phases repeat cyclically).
    phase_end: f64,
}

impl TraceStream {
    /// Validate `spec` and position the stream at t = 0.
    pub fn new(spec: &TraceSpec) -> Result<TraceStream, SimError> {
        spec.validate()?;
        let mut zipf_cdf: Vec<f64> = Vec::with_capacity(spec.apps);
        let mut acc = 0.0;
        for r in 0..spec.apps {
            acc += ((r + 1) as f64).powf(-spec.zipf_exponent);
            zipf_cdf.push(acc);
        }
        let (lo, hi) = spec.size_range_mb;
        let alpha = spec.size_tail_alpha;
        Ok(TraceStream {
            gaps: stream(spec.seed, "trace.gaps"),
            picks: stream(spec.seed, "trace.apps"),
            sizes: stream(spec.seed, "trace.sizes"),
            phases: spec.phases.clone(),
            apps: spec.apps,
            zipf_cdf,
            zipf_total: acc,
            lo,
            hi,
            alpha,
            tail_ratio: (lo / hi).powf(alpha),
            cycle_s: spec.phases.iter().map(|p| p.duration_s).sum(),
            t: 0.0,
            phase: 0,
            phase_end: spec.phases[0].duration_s,
        })
    }

    /// Pull up to `n` arrivals into `buf` (cleared first). Returns the
    /// number pulled — always `n`, since the cycle never ends, but the
    /// signature leaves room for finite stream sources. Chunked pulls
    /// compose: any chunking of the same stream yields the same sequence.
    pub fn next_chunk(&mut self, buf: &mut Vec<TraceArrival>, n: usize) -> usize {
        buf.clear();
        buf.extend(self.by_ref().take(n));
        buf.len()
    }
}

impl Iterator for TraceStream {
    type Item = TraceArrival;

    fn next(&mut self) -> Option<TraceArrival> {
        loop {
            // Exponential gap at the current phase's rate. Redrawing at each
            // boundary crossing is exact for piecewise-constant Poisson. A
            // silent phase (rate 0) draws an infinite gap, which always
            // crosses the boundary: the phase is fast-forwarded arrival-free.
            let u: f64 = self.gaps.gen_range(f64::EPSILON..1.0);
            let gap = -u.ln() / self.phases[self.phase].rate_per_s;
            if self.t + gap >= self.phase_end {
                // Crossed into the next phase: fast-forward and redraw there.
                self.t = self.phase_end;
                self.phase = (self.phase + 1) % self.phases.len();
                self.phase_end += self.phases[self.phase].duration_s;
                // Guard against float creep over very long traces.
                debug_assert!(self.phase_end - self.t <= self.cycle_s + 1.0);
                continue;
            }
            self.t += gap;

            let zu: f64 = self.picks.gen_range(0.0..self.zipf_total);
            let app = self
                .zipf_cdf
                .partition_point(|&c| c <= zu)
                .min(self.apps - 1);

            let su: f64 = self.sizes.gen_range(0.0..1.0);
            // Inverse CDF of the Pareto truncated to [lo, hi].
            let size_mb = if self.hi > self.lo {
                self.lo / (1.0 - su * (1.0 - self.tail_ratio)).powf(1.0 / self.alpha)
            } else {
                self.lo
            };

            return Some(TraceArrival {
                at_s: self.t,
                app,
                size_mb: size_mb.clamp(self.lo, self.hi),
            });
        }
    }
}

/// Generate `count` arrivals from `spec`, sorted by time.
///
/// Three independent seeded streams (gaps, app picks, sizes) derive from
/// `spec.seed`, so changing e.g. the size distribution leaves the arrival
/// times untouched. This is the eager (materialized) form of
/// [`TraceStream`]; the two produce identical sequences.
pub fn generate(spec: &TraceSpec, count: usize) -> Result<Vec<TraceArrival>, SimError> {
    Ok(TraceStream::new(spec)?.take(count).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec::alibaba_like(42, 12, 2.0)
    }

    #[test]
    fn traces_are_reproducible() {
        let a = generate(&spec(), 5000).expect("generate");
        let b = generate(&spec(), 5000).expect("generate");
        assert_eq!(a, b);
        let c = generate(&TraceSpec { seed: 43, ..spec() }, 5000).expect("generate");
        assert_ne!(a, c);
    }

    #[test]
    fn times_are_monotone_and_finite() {
        let tr = generate(&spec(), 5000).expect("generate");
        assert_eq!(tr.len(), 5000);
        let mut prev = 0.0;
        for a in &tr {
            assert!(a.at_s.is_finite() && a.at_s >= prev);
            prev = a.at_s;
        }
    }

    #[test]
    fn phase_rates_shape_the_arrival_density() {
        // Peak phase (rate 2/s) must see far more arrivals per second than
        // the trough (rate 0.5/s). Count arrivals in the first cycle.
        let s = spec();
        let tr = generate(&s, 6000).expect("generate");
        let trough: usize = tr.iter().filter(|a| a.at_s < 1200.0).count();
        let peak: usize = tr
            .iter()
            .filter(|a| (1800.0..3000.0).contains(&a.at_s))
            .count();
        // Same duration, 4× the rate: allow generous statistical slack.
        assert!(
            peak as f64 > 2.5 * trough as f64,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn app_mix_is_zipf_skewed_and_in_range() {
        let s = spec();
        let tr = generate(&s, 20_000).expect("generate");
        let mut counts = vec![0_usize; s.apps];
        for a in &tr {
            assert!(a.app < s.apps);
            counts[a.app] += 1;
        }
        // Rank 0 dominates; every rank still shows up in 20k draws.
        assert!(counts[0] > counts[s.apps - 1] * 3);
        assert!(counts.iter().all(|&c| c > 0));
        // Monotone-ish head: rank 0 beats rank 1 beats rank 2.
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn sizes_are_bounded_and_heavy_tailed() {
        let s = spec();
        let tr = generate(&s, 20_000).expect("generate");
        let (lo, hi) = s.size_range_mb;
        for a in &tr {
            assert!((lo..=hi).contains(&a.size_mb));
        }
        // Heavy tail: the median sits well below the midpoint, yet some
        // jobs land in the top decile of the range.
        let mut sizes: Vec<f64> = tr.iter().map(|a| a.size_mb).collect();
        sizes.sort_by(f64::total_cmp);
        let median = sizes[sizes.len() / 2];
        assert!(median < (lo + hi) / 4.0, "median {median}");
        assert!(sizes[sizes.len() - 1] > hi * 0.9);
    }

    #[test]
    fn stream_matches_eager_and_is_resumable() {
        let s = spec();
        let eager = generate(&s, 4000).expect("generate");
        let streamed: Vec<TraceArrival> =
            TraceStream::new(&s).expect("stream").take(4000).collect();
        assert_eq!(eager, streamed);
        // One stream pulled in uneven chunks is the same sequence.
        let mut st = TraceStream::new(&s).expect("stream");
        let mut buf = Vec::new();
        let mut chunked = Vec::new();
        for n in [1, 999, 3000] {
            assert_eq!(st.next_chunk(&mut buf, n), n);
            chunked.extend_from_slice(&buf);
        }
        assert_eq!(eager, chunked);
    }

    #[test]
    fn stream_construction_validates_the_spec() {
        let mut s = spec();
        s.apps = 0;
        assert!(TraceStream::new(&s).is_err());
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let mut s = spec();
        s.apps = 0;
        assert!(generate(&s, 10).is_err());
        let mut s = spec();
        s.phases.clear();
        assert!(generate(&s, 10).is_err());
        let mut s = spec();
        s.phases[0].rate_per_s = -1.0;
        assert!(generate(&s, 10).is_err());
        let mut s = spec();
        for p in &mut s.phases {
            p.rate_per_s = 0.0;
        }
        assert!(generate(&s, 10).is_err(), "an all-silent cycle never emits");
        let mut s = spec();
        s.size_range_mb = (100.0, 50.0);
        assert!(generate(&s, 10).is_err());
        let mut s = spec();
        s.zipf_exponent = f64::NAN;
        assert!(generate(&s, 10).is_err());
    }

    #[test]
    fn degenerate_size_range_is_constant() {
        let mut s = spec();
        s.size_range_mb = (256.0, 256.0);
        let tr = generate(&s, 100).expect("generate");
        assert!(tr.iter().all(|a| a.size_mb == 256.0));
    }

    #[test]
    fn zero_rate_phase_is_silent_and_deterministic() {
        // trough (2/s for 100 s) → silence (0/s for 500 s) → peak. The
        // silent window must contain no arrivals, times must stay
        // monotone across it, and the draw must be reproducible.
        let mut s = spec();
        s.phases = vec![
            ArrivalPhase {
                duration_s: 100.0,
                rate_per_s: 2.0,
            },
            ArrivalPhase {
                duration_s: 500.0,
                rate_per_s: 0.0,
            },
            ArrivalPhase {
                duration_s: 100.0,
                rate_per_s: 2.0,
            },
        ];
        let tr = generate(&s, 2000).expect("generate");
        assert_eq!(tr, generate(&s, 2000).expect("generate"));
        let cycle = 700.0;
        let mut prev = 0.0;
        let mut before = 0_usize;
        let mut after = 0_usize;
        for a in &tr {
            assert!(a.at_s.is_finite() && a.at_s >= prev);
            prev = a.at_s;
            let in_cycle = a.at_s % cycle;
            assert!(
                !(100.0..600.0).contains(&in_cycle),
                "arrival at {} falls inside a silent phase",
                a.at_s
            );
            if in_cycle < 100.0 {
                before += 1;
            } else {
                after += 1;
            }
        }
        // Both live phases actually emit across the repeated cycles.
        assert!(before > 0 && after > 0, "before {before} after {after}");
    }

    #[test]
    fn single_entry_catalog_always_picks_rank_zero() {
        // The degenerate "single-node cluster" trace: a catalog of one
        // application. The Zipf inverse CDF must not index out of range
        // and every arrival maps to rank 0.
        let mut s = spec();
        s.apps = 1;
        let tr = generate(&s, 3000).expect("generate");
        assert_eq!(tr.len(), 3000);
        assert!(tr.iter().all(|a| a.app == 0));
        assert_eq!(tr, generate(&s, 3000).expect("generate"));
    }

    #[test]
    fn arrivals_never_land_exactly_on_a_phase_boundary() {
        // The boundary-crossing rule uses `t + gap >= phase_end`: a gap
        // landing *exactly* on the boundary instant is treated as a
        // crossing (fast-forward, redraw in the new phase), never as an
        // arrival at the boundary. Verify over many cycles of a short,
        // hot cycle, where boundary hits would be most likely.
        let mut s = spec();
        s.phases = vec![
            ArrivalPhase {
                duration_s: 10.0,
                rate_per_s: 5.0,
            },
            ArrivalPhase {
                duration_s: 10.0,
                rate_per_s: 1.0,
            },
        ];
        let tr = generate(&s, 5000).expect("generate");
        for a in &tr {
            let in_cycle = a.at_s % 10.0;
            assert!(
                in_cycle != 0.0 || a.at_s == 0.0,
                "arrival at {} sits exactly on a phase boundary",
                a.at_s
            );
        }
        // And the redraw preserves strict monotonicity of the sequence.
        for w in tr.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
    }
}
