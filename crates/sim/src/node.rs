//! Node hardware model: the simulated stand-in for the paper's Intel Atom
//! C2758 microserver (§2.1): 8 cores, two-level cache hierarchy, 8 GB DDR3 and
//! a single shared SATA disk.
//!
//! Only behaviours that drive the paper's effects are modelled:
//!
//! * **disk**: a shared bandwidth pool with (a) a per-stream sequential-rate
//!   cap that *grows with the HDFS block size* (longer sequential extents →
//!   fewer seeks), and (b) a stream-count efficiency curve `η(k)` that decays
//!   as concurrent streams interleave and thrash the head;
//! * **memory bandwidth**: a shared pool that saturates under many
//!   high-miss-rate cores — this is what makes CF/FP "memory-bound";
//! * **DRAM capacity**: overflowing it inflates disk traffic (spill/swap
//!   pressure), which penalises huge block sizes at high mapper counts.

use crate::dvfs::Frequency;

/// Disk subsystem parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpec {
    /// Peak sequential bandwidth with a single stream, MB/s.
    pub peak_bw_mbps: f64,
    /// Per-stream rate approaches `stream_cap_mbps` for very large sequential
    /// extents; see [`DiskSpec::stream_rate`].
    pub stream_cap_mbps: f64,
    /// Half-saturation extent (MB) of the per-stream rate curve: a stream
    /// reading extents of this length achieves half of `stream_cap_mbps`.
    pub stream_half_extent_mb: f64,
    /// Seek-interference coefficient of the efficiency curve
    /// `η(k) = 1 / (1 + seek_penalty·(k-1))`.
    pub seek_penalty: f64,
    /// Active power of the disk at full utilisation, watts.
    pub active_power_w: f64,
}

impl DiskSpec {
    /// Effective aggregate bandwidth with `streams` concurrent streams, MB/s.
    ///
    /// `η(1) = 1`; more streams interleave seeks and reduce the aggregate.
    #[inline]
    pub fn aggregate_bw(&self, streams: f64) -> f64 {
        let k = streams.max(1.0);
        self.peak_bw_mbps / (1.0 + self.seek_penalty * (k - 1.0))
    }

    /// Achievable rate of a single stream reading sequential extents of
    /// `extent_mb` (MB/s), before any sharing is applied.
    ///
    /// This saturating curve is what makes small HDFS blocks slow: a 64 MB
    /// block never amortises the per-extent positioning cost the way a 1 GB
    /// block does.
    #[inline]
    pub fn stream_rate(&self, extent_mb: f64) -> f64 {
        let e = extent_mb.max(1.0);
        self.stream_cap_mbps * e / (e + self.stream_half_extent_mb)
    }
}

/// Memory subsystem parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSpec {
    /// Sustainable memory bandwidth, GB/s (DDR3-1600 on the Atom achieves far
    /// less than the channel peak; we use a realistic sustained figure).
    pub bandwidth_gbps: f64,
    /// DRAM capacity, MB.
    pub capacity_mb: f64,
    /// Power at full bandwidth utilisation, watts.
    pub active_power_w: f64,
}

/// The full node specification.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Physical cores (the Atom C2758 has 8).
    pub cores: u32,
    /// Disk subsystem.
    pub disk: DiskSpec,
    /// Memory subsystem.
    pub mem: MemSpec,
    /// Wall idle power of the whole box, watts. Subtracted from all EDP power
    /// figures exactly as the paper does (§2.5).
    pub idle_power_w: f64,
    /// Dynamic power of one fully-busy core at 2.4 GHz, watts. Other
    /// frequencies scale by [`Frequency::dynamic_factor`].
    pub core_busy_power_w: f64,
    /// Power of a core that is allocated but stalled on I/O (iowait), watts.
    /// Burned regardless of frequency — this is why parking an I/O-bound app
    /// on all 8 cores wastes energy.
    pub core_iowait_power_w: f64,
    /// Frequency-independent per-core "uncore tax" while allocated, watts.
    pub core_static_power_w: f64,
}

impl NodeSpec {
    /// The paper's microserver: Intel Atom C2758, 8 cores, 8 GB DDR3-1600,
    /// one SATA disk.
    pub fn atom_c2758() -> NodeSpec {
        NodeSpec {
            cores: 8,
            disk: DiskSpec {
                peak_bw_mbps: 170.0,
                stream_cap_mbps: 150.0,
                stream_half_extent_mb: 110.0,
                seek_penalty: 0.055,
                active_power_w: 4.5,
            },
            mem: MemSpec {
                bandwidth_gbps: 9.5,
                capacity_mb: 8192.0,
                active_power_w: 3.0,
            },
            idle_power_w: 16.0,
            core_busy_power_w: 2.05,
            core_iowait_power_w: 0.22,
            core_static_power_w: 0.18,
        }
    }

    /// A Xeon-class big-core node, used by the "applies to high-performance
    /// servers too" extension experiments (§2.1 of the paper claims the
    /// methodology transfers; we back that with an ablation).
    pub fn xeon_like() -> NodeSpec {
        NodeSpec {
            cores: 16,
            disk: DiskSpec {
                peak_bw_mbps: 500.0,
                stream_cap_mbps: 420.0,
                stream_half_extent_mb: 80.0,
                seek_penalty: 0.03,
                active_power_w: 8.0,
            },
            mem: MemSpec {
                bandwidth_gbps: 45.0,
                capacity_mb: 65536.0,
                active_power_w: 12.0,
            },
            idle_power_w: 55.0,
            core_busy_power_w: 7.5,
            core_iowait_power_w: 1.1,
            core_static_power_w: 0.9,
        }
    }

    /// Dynamic power of one busy core at `freq`, watts.
    #[inline]
    pub fn core_power(&self, freq: Frequency) -> f64 {
        self.core_busy_power_w * freq.dynamic_factor()
    }

    /// Memory bandwidth in MB/s (the executor works in MB).
    #[inline]
    pub fn mem_bw_mbps(&self) -> f64 {
        self.mem.bandwidth_gbps * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rate_grows_with_block_size() {
        let d = NodeSpec::atom_c2758().disk;
        let r64 = d.stream_rate(64.0);
        let r256 = d.stream_rate(256.0);
        let r1024 = d.stream_rate(1024.0);
        assert!(r64 < r256 && r256 < r1024);
        assert!(r1024 < d.stream_cap_mbps);
        // 64 MB blocks should pay a substantial sequentiality penalty.
        assert!(r64 / r1024 < 0.55, "r64={r64} r1024={r1024}");
    }

    #[test]
    fn aggregate_bw_decays_with_streams() {
        let d = NodeSpec::atom_c2758().disk;
        assert!((d.aggregate_bw(1.0) - d.peak_bw_mbps).abs() < 1e-9);
        assert!(d.aggregate_bw(4.0) < d.aggregate_bw(2.0));
        assert!(d.aggregate_bw(16.0) > 0.0);
        // Fractional and sub-1 stream counts are clamped.
        assert!((d.aggregate_bw(0.2) - d.peak_bw_mbps).abs() < 1e-9);
    }

    #[test]
    fn core_power_scales_with_dvfs() {
        let n = NodeSpec::atom_c2758();
        assert!((n.core_power(Frequency::F2_4) - n.core_busy_power_w).abs() < 1e-12);
        assert!(n.core_power(Frequency::F1_2) < 0.35 * n.core_busy_power_w);
    }

    #[test]
    fn presets_are_sane() {
        let atom = NodeSpec::atom_c2758();
        assert_eq!(atom.cores, 8);
        assert!(atom.mem.capacity_mb >= 8.0 * 1024.0);
        let xeon = NodeSpec::xeon_like();
        assert!(xeon.cores > atom.cores);
        assert!(xeon.core_busy_power_w > atom.core_busy_power_w);
        assert!(xeon.mem.bandwidth_gbps > atom.mem.bandwidth_gbps);
    }
}
