//! Deterministic fault injection: node crashes, node slowdowns and task
//! stragglers scheduled against a [`ClusterSpec`].
//!
//! The paper's testbed is an 8-node Atom micro-server cluster where node
//! slowdowns, disk contention and task stragglers are the norm, yet the
//! happy-path simulation assumes a perfect cluster. A [`FaultPlan`] is the
//! bridge: a pre-drawn, time-sorted list of fault events that a scheduler
//! replays against its simulated nodes. Plans are sampled from the seeded
//! [`crate::rng`] streams, so a chaos experiment is exactly as reproducible
//! as a healthy one — same seed, same faults, same result.
//!
//! The three event kinds mirror what degrades real MapReduce clusters:
//!
//! * [`FaultKind::NodeCrash`] — the node leaves service permanently; any
//!   work in flight there is lost and must be rescheduled elsewhere.
//! * [`FaultKind::NodeSlowdown`] — the node keeps running but every rate is
//!   degraded by a factor (thermal frequency cap, a failing disk, a noisy
//!   neighbour on shared storage).
//! * [`FaultKind::Straggler`] — one task wave of one job on the node runs a
//!   multiplier slower (skewed partition, page-cache miss storm); the
//!   classic target of MapReduce speculative execution.

use crate::cluster::ClusterSpec;
use crate::rng;
use ecost_telemetry::{Event, Recorder};
use rand::Rng;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node fails permanently: in-flight work is lost, the node serves
    /// nothing afterwards.
    NodeCrash,
    /// Every rate on the node is divided by `factor` (≥ 1) from the event
    /// time on — modelling a frequency cap and/or disk-bandwidth
    /// degradation.
    NodeSlowdown {
        /// Degradation factor (1 = healthy, 2 = half speed).
        factor: f64,
    },
    /// The current task wave of one job on the node is slowed by
    /// `multiplier` (≥ 1) until the wave completes or a speculative backup
    /// replaces it.
    Straggler {
        /// Wave slow-down multiplier (1 = healthy).
        multiplier: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time the fault strikes, seconds.
    pub at_s: f64,
    /// Index of the afflicted node (0-based).
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Per-node fault intensities used by [`FaultPlan::sample`]. Probabilities
/// apply independently per node over the plan's horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a node crashes somewhere in the horizon.
    pub crash_rate: f64,
    /// Probability a node suffers a permanent slowdown in the horizon.
    pub slowdown_rate: f64,
    /// Slowdown factor applied when a slowdown fires (≥ 1).
    pub slowdown_factor: f64,
    /// Expected straggler events per node over the horizon.
    pub straggler_rate: f64,
    /// Wave multiplier applied when a straggler fires (≥ 1).
    pub straggler_multiplier: f64,
    /// Time window events are placed in, seconds.
    pub horizon_s: f64,
}

impl FaultSpec {
    /// A perfectly healthy cluster: nothing ever fires.
    pub fn healthy(horizon_s: f64) -> FaultSpec {
        FaultSpec {
            crash_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_factor: 1.0,
            straggler_rate: 0.0,
            straggler_multiplier: 1.0,
            horizon_s,
        }
    }

    /// A one-knob preset: `intensity` in [0, 1] scales every rate from
    /// healthy (0) to a harsh regime (1: every other node degraded, one
    /// straggler per node expected, a quarter of nodes lost).
    pub fn scaled(intensity: f64, horizon_s: f64) -> FaultSpec {
        let x = intensity.clamp(0.0, 1.0);
        FaultSpec {
            crash_rate: 0.25 * x,
            slowdown_rate: 0.5 * x,
            slowdown_factor: 1.0 + x,
            straggler_rate: x,
            straggler_multiplier: 1.0 + 2.0 * x,
            horizon_s,
        }
    }
}

/// A pre-drawn, time-sorted fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a run under it is bit-identical to a fault-free run.
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Scheduled events, sorted by time (ties by node index).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Add one event (re-sorts; non-finite or negative times are clamped to
    /// zero, degradation knobs below 1 are clamped to 1).
    pub fn with_event(mut self, at_s: f64, node: usize, kind: FaultKind) -> FaultPlan {
        let at_s = if at_s.is_finite() { at_s.max(0.0) } else { 0.0 };
        let kind = match kind {
            FaultKind::NodeSlowdown { factor } => FaultKind::NodeSlowdown {
                factor: if factor.is_finite() {
                    factor.max(1.0)
                } else {
                    1.0
                },
            },
            FaultKind::Straggler { multiplier } => FaultKind::Straggler {
                multiplier: if multiplier.is_finite() {
                    multiplier.max(1.0)
                } else {
                    1.0
                },
            },
            FaultKind::NodeCrash => FaultKind::NodeCrash,
        };
        self.events.push(FaultEvent { at_s, node, kind });
        self.sort();
        self
    }

    /// Draw a plan for `cluster` under `spec`, deterministically from
    /// `seed` (the `"faults"` stream of [`crate::rng`]). Same seed, same
    /// spec, same cluster → identical plan.
    pub fn sample(cluster: &ClusterSpec, spec: &FaultSpec, seed: u64) -> FaultPlan {
        let mut rng = rng::stream(seed, "faults");
        let horizon = if spec.horizon_s.is_finite() {
            spec.horizon_s.max(0.0)
        } else {
            0.0
        };
        let mut plan = FaultPlan::none();
        for node in 0..cluster.nodes {
            // Stragglers: expectation `straggler_rate`, drawn as whole
            // events plus a Bernoulli fractional part.
            let rate = spec.straggler_rate.max(0.0);
            let mut count = rate.floor() as u32;
            if rng.gen_range(0.0..1.0) < rate.fract() {
                count += 1;
            }
            for _ in 0..count {
                plan.events.push(FaultEvent {
                    at_s: rng.gen_range(0.0..1.0) * horizon,
                    node,
                    kind: FaultKind::Straggler {
                        multiplier: spec.straggler_multiplier.max(1.0),
                    },
                });
            }
            if rng.gen_range(0.0..1.0) < spec.slowdown_rate.clamp(0.0, 1.0) {
                plan.events.push(FaultEvent {
                    at_s: rng.gen_range(0.0..1.0) * horizon,
                    node,
                    kind: FaultKind::NodeSlowdown {
                        factor: spec.slowdown_factor.max(1.0),
                    },
                });
            }
            if rng.gen_range(0.0..1.0) < spec.crash_rate.clamp(0.0, 1.0) {
                plan.events.push(FaultEvent {
                    at_s: rng.gen_range(0.0..1.0) * horizon,
                    node,
                    kind: FaultKind::NodeCrash,
                });
            }
        }
        plan.sort();
        plan
    }

    /// Record every scheduled event into `rec` as a `fault-planned` instant
    /// at the time it will strike. A no-op recorder drops them for free;
    /// recorded traces show the plan alongside the faults that actually
    /// fired (a crashed node never fires faults planned after its death).
    pub fn record_schedule(&self, rec: &Recorder) {
        for ev in &self.events {
            let kind = match ev.kind {
                FaultKind::NodeCrash => "node-crash",
                FaultKind::NodeSlowdown { .. } => "node-slowdown",
                FaultKind::Straggler { .. } => "straggler",
            };
            rec.emit(ev.at_s, Some(ev.node as u32), None, || {
                Event::FaultPlanned {
                    kind: kind.to_string(),
                }
            });
        }
    }

    /// Count of events per kind: `(crashes, slowdowns, stragglers)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in &self.events {
            match e.kind {
                FaultKind::NodeCrash => c.0 += 1,
                FaultKind::NodeSlowdown { .. } => c.1 += 1,
                FaultKind::Straggler { .. } => c.2 += 1,
            }
        }
        c
    }

    fn sort(&mut self) {
        self.events
            .sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.node.cmp(&b.node)));
    }
}

/// What the service-level fault machinery injects into one tuning
/// request: how many consecutive transient evaluation failures it hits
/// before succeeding, and how much slower than nominal its simulated
/// evaluation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestFaults {
    /// Transient failures before the evaluation succeeds (0 = healthy).
    pub transient_failures: u32,
    /// Multiplier on the request's simulated evaluation cost (≥ 1).
    pub slow_factor: f64,
}

impl RequestFaults {
    /// A healthy request: no failures, nominal speed.
    pub fn none() -> RequestFaults {
        RequestFaults {
            transient_failures: 0,
            slow_factor: 1.0,
        }
    }
}

/// Seeded fault spec for a *tuning service* rather than a cluster: the
/// service-level twin of [`FaultSpec`]. Where `FaultSpec` rates describe
/// node crashes and stragglers over a horizon, this one describes what a
/// tuning request experiences on its way through the evaluation engine —
/// transient-failure bursts (cured by bounded retry when short enough)
/// and slow evaluations (which eat the request's deadline budget).
///
/// Draws are *per request sequence number*: [`ServiceFaultSpec::draw`]
/// derives a fresh RNG from `(seed, seq)`, so the faults a request sees
/// are independent of the order in which concurrent worker threads reach
/// it — the scenario harness depends on this for byte-identical reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceFaultSpec {
    /// Probability a request hits a transient-failure burst.
    pub transient_rate: f64,
    /// Consecutive failures in a burst (retry cures bursts that fit the
    /// retry budget; longer bursts fail the evaluation tier).
    pub transient_burst: u32,
    /// Probability a request's simulated evaluation runs slow.
    pub slow_rate: f64,
    /// Cost multiplier applied to a slow evaluation (≥ 1).
    pub slow_factor: f64,
    /// Root seed for the per-request draws.
    pub seed: u64,
}

impl ServiceFaultSpec {
    /// No injected service faults; every request draws healthy.
    pub fn healthy(seed: u64) -> ServiceFaultSpec {
        ServiceFaultSpec {
            transient_rate: 0.0,
            transient_burst: 0,
            slow_rate: 0.0,
            slow_factor: 1.0,
            seed,
        }
    }

    /// The faults request number `seq` experiences. Deterministic in
    /// `(self, seq)` and independent across sequence numbers: each draw
    /// folds `seq` into the root seed and opens its own
    /// [`crate::rng::stream`], so concurrent workers can draw in any
    /// order. Degenerate rates (NaN, negative) draw healthy; a slow
    /// factor below 1 is clamped to nominal speed.
    pub fn draw(&self, seq: u64) -> RequestFaults {
        if self.transient_rate <= 0.0 && self.slow_rate <= 0.0 {
            return RequestFaults::none();
        }
        let mut z = self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut rng = rng::stream(z, "service.request");
        let transient: f64 = rng.gen_range(0.0..1.0);
        let slow: f64 = rng.gen_range(0.0..1.0);
        RequestFaults {
            transient_failures: if self.transient_rate > 0.0 && transient < self.transient_rate {
                self.transient_burst
            } else {
                0
            },
            slow_factor: if self.slow_rate > 0.0
                && slow < self.slow_rate
                && self.slow_factor.is_finite()
            {
                self.slow_factor.max(1.0)
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.census(), (0, 0, 0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let cluster = ClusterSpec::atom_cluster(8);
        let spec = FaultSpec::scaled(0.8, 1000.0);
        let a = FaultPlan::sample(&cluster, &spec, 42);
        let b = FaultPlan::sample(&cluster, &spec, 42);
        assert_eq!(a, b);
        let c = FaultPlan::sample(&cluster, &spec, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_time_sorted() {
        let cluster = ClusterSpec::atom_cluster(8);
        let spec = FaultSpec::scaled(1.0, 500.0);
        let p = FaultPlan::sample(&cluster, &spec, 7);
        assert!(!p.is_empty(), "intensity 1 on 8 nodes must draw something");
        for w in p.events().windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
    }

    #[test]
    fn healthy_spec_draws_nothing() {
        let cluster = ClusterSpec::atom_cluster(8);
        let p = FaultPlan::sample(&cluster, &FaultSpec::healthy(1000.0), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn with_event_clamps_and_sorts() {
        let p = FaultPlan::none()
            .with_event(50.0, 1, FaultKind::NodeCrash)
            .with_event(-3.0, 0, FaultKind::NodeSlowdown { factor: 0.2 })
            .with_event(f64::NAN, 2, FaultKind::Straggler { multiplier: 0.0 });
        assert_eq!(p.len(), 3);
        assert_eq!(p.events()[0].at_s, 0.0);
        assert!(matches!(
            p.events()[0].kind,
            FaultKind::NodeSlowdown { factor } if factor == 1.0
        ));
        assert_eq!(p.events()[2].at_s, 50.0);
        assert_eq!(p.census(), (1, 1, 1));
    }

    #[test]
    fn scaled_zero_equals_healthy() {
        let s = FaultSpec::scaled(0.0, 100.0);
        assert_eq!(s, FaultSpec::healthy(100.0));
    }

    #[test]
    fn service_draws_are_per_seq_deterministic() {
        let spec = ServiceFaultSpec {
            transient_rate: 0.5,
            transient_burst: 3,
            slow_rate: 0.5,
            slow_factor: 4.0,
            seed: 11,
        };
        // Same (spec, seq) → same draw, in any order.
        for seq in [0_u64, 1, 7, 1000] {
            assert_eq!(spec.draw(seq), spec.draw(seq));
        }
        // The rates actually bite: over many draws both arms appear.
        let (mut bursts, mut slows) = (0, 0);
        for seq in 0..200 {
            let f = spec.draw(seq);
            if f.transient_failures > 0 {
                bursts += 1;
            }
            if f.slow_factor > 1.0 {
                slows += 1;
            }
            assert!(f.transient_failures == 0 || f.transient_failures == 3);
            assert!(f.slow_factor == 1.0 || f.slow_factor == 4.0);
        }
        assert!((40..160).contains(&bursts), "bursts {bursts}");
        assert!((40..160).contains(&slows), "slows {slows}");
        // A different seed draws a different fault pattern.
        let other = ServiceFaultSpec { seed: 12, ..spec };
        assert!((0..200).any(|s| other.draw(s) != spec.draw(s)));
    }

    #[test]
    fn healthy_service_spec_draws_nothing() {
        let spec = ServiceFaultSpec::healthy(5);
        for seq in 0..50 {
            assert_eq!(spec.draw(seq), RequestFaults::none());
        }
    }

    #[test]
    fn degenerate_service_rates_are_sanitised() {
        let spec = ServiceFaultSpec {
            transient_rate: f64::NAN,
            transient_burst: 2,
            slow_rate: 2.0,
            slow_factor: 0.5,
            seed: 3,
        };
        for seq in 0..20 {
            let f = spec.draw(seq);
            // NaN rate never fires; slow factor below 1 clamps to nominal.
            assert_eq!(f.transient_failures, 0);
            assert_eq!(f.slow_factor, 1.0);
        }
    }
}
