//! Error type shared by the simulation substrate.

use std::fmt;

/// Errors raised by the hardware/fluid substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration asked for more cores than the node owns.
    CoreBudgetExceeded {
        /// Cores requested across all co-located applications.
        requested: u32,
        /// Cores physically present on the node.
        available: u32,
    },
    /// A demand vector contained a non-finite or negative value.
    InvalidDemand(&'static str),
    /// The AMVA fixed point failed to converge within the iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A cluster-level request referenced a node that does not exist.
    NoSuchNode(usize),
    /// A fault-injection request referenced a job handle not active on the
    /// node (already finished, or never submitted there).
    NoSuchJob(u64),
    /// The discrete-event loop failed to make progress: more events fired
    /// than the submitted stage work could possibly produce, so the rate
    /// solution must have stalled (e.g. all rates collapsed to zero).
    EventLoopRunaway {
        /// Events processed before the guard tripped.
        events: u64,
        /// Upper bound derived from the submitted stage counts.
        budget: u64,
    },
    /// A time step handed to `advance` was negative, NaN or infinite.
    InvalidTimeStep {
        /// The offending step, simulated seconds.
        dt: f64,
    },
    /// More jobs were submitted to one node simulator than its inline
    /// scratch capacity can hold (the co-location cap, sized well above
    /// the per-node core count — each job needs at least one mapper core).
    ColocationCapExceeded {
        /// Jobs already active on the node.
        active: usize,
        /// Inline scratch capacity.
        cap: usize,
    },
    /// An internal invariant was violated — a bug surfaced as a typed
    /// error instead of a panic, so library callers stay panic-free.
    Internal(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CoreBudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "core budget exceeded: requested {requested}, node has {available}"
            ),
            SimError::InvalidDemand(what) => write!(f, "invalid demand: {what}"),
            SimError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "AMVA failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SimError::EventLoopRunaway { events, budget } => write!(
                f,
                "event-loop runaway: {events} events without completion (budget {budget})"
            ),
            SimError::InvalidTimeStep { dt } => {
                write!(f, "invalid time step: dt = {dt} (must be finite and >= 0)")
            }
            SimError::ColocationCapExceeded { active, cap } => write!(
                f,
                "co-location cap exceeded: {active} jobs already active, scratch capacity {cap}"
            ),
            SimError::NoSuchNode(i) => write!(f, "no such node: {i}"),
            SimError::NoSuchJob(h) => write!(f, "no such active job: handle {h}"),
            SimError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::CoreBudgetExceeded {
            requested: 9,
            available: 8,
        };
        assert!(e.to_string().contains("requested 9"));
        let e = SimError::NoConvergence {
            iterations: 100,
            residual: 0.5,
        };
        assert!(e.to_string().contains("100"));
    }
}
