//! Error type shared by the simulation substrate.

use std::fmt;

/// Errors raised by the hardware/fluid substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration asked for more cores than the node owns.
    CoreBudgetExceeded {
        /// Cores requested across all co-located applications.
        requested: u32,
        /// Cores physically present on the node.
        available: u32,
    },
    /// A demand vector contained a non-finite or negative value.
    InvalidDemand(&'static str),
    /// The AMVA fixed point failed to converge within the iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A cluster-level request referenced a node that does not exist.
    NoSuchNode(usize),
    /// A fault-injection request referenced a job handle not active on the
    /// node (already finished, or never submitted there).
    NoSuchJob(u64),
    /// An internal invariant was violated — a bug surfaced as a typed
    /// error instead of a panic, so library callers stay panic-free.
    Internal(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CoreBudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "core budget exceeded: requested {requested}, node has {available}"
            ),
            SimError::InvalidDemand(what) => write!(f, "invalid demand: {what}"),
            SimError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "AMVA failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SimError::NoSuchNode(i) => write!(f, "no such node: {i}"),
            SimError::NoSuchJob(h) => write!(f, "no such active job: handle {h}"),
            SimError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::CoreBudgetExceeded {
            requested: 9,
            available: 8,
        };
        assert!(e.to_string().contains("requested 9"));
        let e = SimError::NoConvergence {
            iterations: 100,
            residual: 0.5,
        };
        assert!(e.to_string().contains("100"));
    }
}
