//! # ecost-sim — hardware substrate for the ECoST reproduction
//!
//! The ECoST paper (Malik et al., ICPP 2019) runs on a physical 8-node Intel
//! Atom C2758 cluster measured with a wall-power meter. This crate is the
//! simulation stand-in for that hardware: it models
//!
//! * the **node**: 8 cores with per-application DVFS, one shared disk with a
//!   per-stream rate cap and a stream-count efficiency curve, a shared memory
//!   bandwidth pool, and 8 GB of DRAM ([`node`]);
//! * the **cluster**: `n` such nodes joined by a 1 GbE interconnect
//!   ([`cluster`]);
//! * **DVFS**: the four frequency levels the paper sweeps (1.2/1.6/2.0/2.4
//!   GHz) with a voltage table driving V²f dynamic power ([`dvfs`]);
//! * **power**: a wall-power model integrated at one-second samples, mirroring
//!   the Wattsup PRO methodology of §2.5 of the paper, including the
//!   idle-power subtraction used for all EDP numbers ([`power`]);
//! * the **fluid rate solver**: an approximate Mean Value Analysis (AMVA)
//!   solver for multiclass closed queueing networks ([`amva`]). Each
//!   co-located MapReduce job is a customer class whose map/reduce slots
//!   alternate between their private cores (a delay station) and the shared
//!   disk (a processor-sharing station). This is what makes co-location
//!   *matter* in the model: a single I/O-bound job cannot keep the disk busy
//!   during its compute bursts, and a co-runner's requests fill those gaps.
//!
//! Everything is deterministic; the only randomness in the workspace is
//! injected explicitly through [`rng`] seeds.

// `deny`, not `forbid`: the `simd` module opts back in (`#![allow]`) for
// the AVX2 intrinsics behind runtime feature detection — the only unsafe
// in the crate, contained to that one file.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod amva;
pub mod arrivals;
pub mod cluster;
pub mod dvfs;
pub mod error;
pub mod fault;
pub mod node;
pub mod power;
pub mod rng;
pub mod simd;
pub mod trace;

pub use amva::{AmvaBatch, AmvaScratch, AmvaSolution, ClassDemand, SharedStation};
pub use arrivals::{ArrivalPhase, TraceArrival, TraceSpec, TraceStream};
pub use cluster::ClusterSpec;
pub use dvfs::Frequency;
pub use error::SimError;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec, RequestFaults, ServiceFaultSpec};
pub use node::{DiskSpec, MemSpec, NodeSpec};
pub use power::{EnergyMeter, PowerBreakdown, PowerModel};
pub use simd::SimdBackend;
