//! DVFS: the operating-frequency knob of the paper (§2.4).
//!
//! The paper sweeps four frequency settings on the Atom C2758:
//! 1.2, 1.6, 2.0 and 2.4 GHz. Dynamic power scales with `V²·f`, so each level
//! carries a voltage drawn from a plausible Atom voltage/frequency table.

use std::fmt;

/// One of the four operating frequencies studied in the paper.
///
/// Ordering follows frequency, so `Frequency::F1_2 < Frequency::F2_4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Frequency {
    /// 1.2 GHz — the minimum setting; all EDP figures in the paper are
    /// normalised against runs at this frequency.
    F1_2,
    /// 1.6 GHz.
    F1_6,
    /// 2.0 GHz.
    F2_0,
    /// 2.4 GHz — the maximum (and, per Table 2, almost always optimal under
    /// EDP) setting.
    F2_4,
}

impl Frequency {
    /// All four levels, ascending. This is the sweep order used by the
    /// brute-force oracle and by STP's config-space enumeration.
    pub const ALL: [Frequency; 4] = [
        Frequency::F1_2,
        Frequency::F1_6,
        Frequency::F2_0,
        Frequency::F2_4,
    ];

    /// Frequency in GHz.
    #[inline]
    pub fn ghz(self) -> f64 {
        match self {
            Frequency::F1_2 => 1.2,
            Frequency::F1_6 => 1.6,
            Frequency::F2_0 => 2.0,
            Frequency::F2_4 => 2.4,
        }
    }

    /// Frequency in cycles per second.
    #[inline]
    pub fn hz(self) -> f64 {
        self.ghz() * 1e9
    }

    /// Core supply voltage at this frequency (volts).
    ///
    /// The exact silicon values are not public; these are representative of
    /// Silvermont-class DVFS ladders and only their *relative* V²f scaling
    /// matters for EDP orderings.
    #[inline]
    pub fn voltage(self) -> f64 {
        match self {
            Frequency::F1_2 => 0.850,
            Frequency::F1_6 => 0.950,
            Frequency::F2_0 => 1.050,
            Frequency::F2_4 => 1.175,
        }
    }

    /// Relative dynamic-power factor `V²·f`, normalised so that 2.4 GHz = 1.
    #[inline]
    pub fn dynamic_factor(self) -> f64 {
        let v = self.voltage();
        let top = {
            let vt = Frequency::F2_4.voltage();
            vt * vt * Frequency::F2_4.ghz()
        };
        v * v * self.ghz() / top
    }

    /// The level index 0..=3 (ascending frequency).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Frequency::F1_2 => 0,
            Frequency::F1_6 => 1,
            Frequency::F2_0 => 2,
            Frequency::F2_4 => 3,
        }
    }

    /// Inverse of [`Frequency::index`]; returns `None` for out-of-range input.
    #[inline]
    pub fn from_index(i: usize) -> Option<Frequency> {
        Frequency::ALL.get(i).copied()
    }

    /// Parse from a GHz value as printed in the paper's tables (e.g. `2.4`).
    pub fn from_ghz(ghz: f64) -> Option<Frequency> {
        Frequency::ALL
            .iter()
            .copied()
            .find(|f| (f.ghz() - ghz).abs() < 1e-9)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GHz", self.ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_ascend() {
        let ghz: Vec<f64> = Frequency::ALL.iter().map(|f| f.ghz()).collect();
        assert_eq!(ghz, vec![1.2, 1.6, 2.0, 2.4]);
        for w in Frequency::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn voltage_monotone_in_frequency() {
        for w in Frequency::ALL.windows(2) {
            assert!(w[0].voltage() < w[1].voltage());
        }
    }

    #[test]
    fn dynamic_factor_normalised_and_monotone() {
        assert!((Frequency::F2_4.dynamic_factor() - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for f in Frequency::ALL {
            assert!(f.dynamic_factor() > prev);
            prev = f.dynamic_factor();
        }
        // The ladder should give a meaningful dynamic range (paper relies on
        // low frequency being much cheaper).
        assert!(Frequency::F1_2.dynamic_factor() < 0.35);
    }

    #[test]
    fn index_round_trips() {
        for (i, f) in Frequency::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(Frequency::from_index(i), Some(*f));
        }
        assert_eq!(Frequency::from_index(4), None);
    }

    #[test]
    fn from_ghz_round_trips() {
        for f in Frequency::ALL {
            assert_eq!(Frequency::from_ghz(f.ghz()), Some(f));
        }
        assert_eq!(Frequency::from_ghz(3.0), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Frequency::F1_2.to_string(), "1.2GHz");
        assert_eq!(Frequency::F2_4.to_string(), "2.4GHz");
    }
}
