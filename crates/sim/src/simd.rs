//! Explicit `f64x4` vector backends for the lane-interleaved AMVA kernel.
//!
//! [`crate::AmvaBatch`] stores its live solve window lane-contiguous
//! (structure-of-arrays, see `amva::Soa`), so the innermost loop of every
//! Bard–Schweitzer round walks four adjacent, *independent* fixed points
//! per step. This module provides the vector types that loop is generic
//! over:
//!
//! * [`F64x4`] — a portable `[f64; 4]` newtype whose operations are plain
//!   per-element IEEE adds/muls/divides in the exact scalar operation
//!   order. Stable Rust, every target; LLVM is free to (and on x86_64
//!   does) lower the element quadruples to vector instructions.
//! * `Avx2F64x4` (x86_64 only) — the same operations as AVX2/AVX
//!   intrinsics behind runtime feature detection, for when the
//!   autovectorizer must not be trusted with the hot loop.
//!
//! **Bit-identity by construction.** The DESIGN.md §11 contract freezes
//! the scalar kernel's floating-point sequence: results must stay
//! byte-identical across every execution strategy. Both backends uphold
//! it the same way the lane-interleaved scalar kernel does — each lane
//! performs exactly the scalar operation sequence, in order, with only
//! the interleaving across lanes changed. Three rules make that hold at
//! the instruction level:
//!
//! 1. **No FMA, no reassociation.** A fused `a*b + c` rounds once where
//!    the scalar kernel rounds twice, so `_mm256_fmadd_pd` (and any
//!    reassociating reduction) is banned; every multiply and add below is
//!    a separate, individually-rounded instruction, and rustc never
//!    contracts `a * b + c` on its own.
//! 2. **Branches become blends.** The scalar kernel's per-lane `if`s
//!    (dead class, zero-demand station, `n ≤ 1`) are evaluated as masks
//!    and resolved with `select` — the not-taken value is computed and
//!    discarded, which IEEE 754 makes safe (no traps; a masked lane's
//!    inf/NaN never lands in state).
//! 3. **Compare-and-blend max.** The residual's `f64::max` is expressed
//!    as `select(b > a, b, a)`, which is bit-identical to `f64::max` for
//!    the never-NaN, non-negative values the residual reduction sees.
//!
//! The backends are *selected* per [`crate::AmvaBatch`] (see
//! [`SimdBackend`]); unsupported requests are validated down to
//! [`SimdBackend::Portable`], so the AVX2 entry point below is only ever
//! reached on a CPU that runtime detection approved. That containment is
//! why this module is the only place in the crate allowed to use
//! `unsafe` (the crate root is `#![deny(unsafe_code)]`).
#![allow(unsafe_code)]

use crate::amva::{round_chunks_impl, RoundSpan};

/// Which vector backend an [`crate::AmvaBatch`] drives its
/// lane-interleaved rounds with.
///
/// Every backend is bit-identical to every other (and to the scalar
/// [`crate::AmvaScratch::solve`] path) by construction — see the module
/// docs — so this is purely a throughput knob. `Scalar` is the
/// always-available escape hatch (the `--no-simd` benchmark arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// The original lane-innermost scalar loops, no explicit vectors.
    Scalar,
    /// Portable `[f64; 4]` lanes (stable Rust, every target).
    Portable,
    /// AVX2 `_mm256d` intrinsics. Only ever selected (or validated) on an
    /// x86_64 CPU whose runtime feature detection reports AVX2.
    Avx2,
}

impl SimdBackend {
    /// The best backend for the running CPU: AVX2 where detected,
    /// otherwise the portable lanes. The `ECOST_SIMD` environment
    /// variable overrides detection for whole-process A/B runs:
    /// `0`/`off`/`scalar` pin the scalar kernel, `portable` pins the
    /// portable lanes (unknown values are ignored).
    pub fn detect() -> SimdBackend {
        if let Ok(v) = std::env::var("ECOST_SIMD") {
            match v.as_str() {
                "0" | "off" | "scalar" => return SimdBackend::Scalar,
                "portable" => return SimdBackend::Portable,
                _ => {}
            }
        }
        detect_native()
    }

    /// Clamp a requested backend to what this machine can actually run:
    /// `Avx2` downgrades to [`SimdBackend::Portable`] unless runtime
    /// detection confirms support. [`crate::AmvaBatch`] stores only
    /// validated backends, which is what makes its dispatch into the
    /// intrinsics sound.
    pub fn validated(self) -> SimdBackend {
        match self {
            SimdBackend::Avx2 => match detect_native() {
                SimdBackend::Avx2 => SimdBackend::Avx2,
                _ => SimdBackend::Portable,
            },
            other => other,
        }
    }

    /// Stable identifier for reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Portable => "portable-f64x4",
            SimdBackend::Avx2 => "avx2-f64x4",
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_native() -> SimdBackend {
    if std::is_x86_feature_detected!("avx2") {
        SimdBackend::Avx2
    } else {
        SimdBackend::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_native() -> SimdBackend {
    SimdBackend::Portable
}

/// Four `f64` lanes advancing in lockstep. Comparisons produce all-ones /
/// all-zero lane masks consumed by [`LaneVec::select`] and combined with
/// [`LaneVec::and`]; arithmetic is one IEEE-rounded operation per lane
/// per call (never fused, never reassociated — the bit-identity contract
/// in the module docs).
pub(crate) trait LaneVec: Copy {
    /// All four lanes set to `x`.
    fn splat(x: f64) -> Self;
    /// Load lanes from `s[at..at + 4]`.
    fn load(s: &[f64], at: usize) -> Self;
    /// Store lanes to `s[at..at + 4]`.
    fn store(self, s: &mut [f64], at: usize);
    /// Per-lane `self + o`.
    fn add(self, o: Self) -> Self;
    /// Per-lane `self - o`.
    fn sub(self, o: Self) -> Self;
    /// Per-lane `self * o`.
    fn mul(self, o: Self) -> Self;
    /// Per-lane `self / o`.
    fn div(self, o: Self) -> Self;
    /// Per-lane `f64::abs` (sign bit cleared).
    fn abs(self) -> Self;
    /// Per-lane mask: all-ones where `self > o` (ordered — false on NaN,
    /// matching the scalar `>`), all-zero elsewhere.
    fn gt(self, o: Self) -> Self;
    /// Per-lane bitwise AND (mask intersection).
    fn and(self, o: Self) -> Self;
    /// Per-lane `if mask { if_true } else { if_false }`.
    fn select(mask: Self, if_true: Self, if_false: Self) -> Self;
}

/// Portable `f64x4`: plain per-element IEEE operations on a `[f64; 4]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct F64x4([f64; 4]);

#[inline(always)]
fn zip(a: [f64; 4], b: [f64; 4], f: impl Fn(f64, f64) -> f64) -> [f64; 4] {
    [f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])]
}

impl LaneVec for F64x4 {
    #[inline(always)]
    fn splat(x: f64) -> Self {
        F64x4([x; 4])
    }

    #[inline(always)]
    fn load(s: &[f64], at: usize) -> Self {
        let s = &s[at..at + 4];
        F64x4([s[0], s[1], s[2], s[3]])
    }

    #[inline(always)]
    fn store(self, s: &mut [f64], at: usize) {
        s[at..at + 4].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        F64x4(zip(self.0, o.0, |a, b| a + b))
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        F64x4(zip(self.0, o.0, |a, b| a - b))
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        F64x4(zip(self.0, o.0, |a, b| a * b))
    }

    #[inline(always)]
    fn div(self, o: Self) -> Self {
        F64x4(zip(self.0, o.0, |a, b| a / b))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        let a = self.0;
        F64x4([a[0].abs(), a[1].abs(), a[2].abs(), a[3].abs()])
    }

    #[inline(always)]
    fn gt(self, o: Self) -> Self {
        F64x4(zip(self.0, o.0, |a, b| {
            if a > b {
                f64::from_bits(u64::MAX)
            } else {
                0.0
            }
        }))
    }

    #[inline(always)]
    fn and(self, o: Self) -> Self {
        F64x4(zip(self.0, o.0, |a, b| {
            f64::from_bits(a.to_bits() & b.to_bits())
        }))
    }

    #[inline(always)]
    fn select(mask: Self, if_true: Self, if_false: Self) -> Self {
        let pick = |m: f64, t: f64, f: f64| if m.to_bits() != 0 { t } else { f };
        F64x4([
            pick(mask.0[0], if_true.0[0], if_false.0[0]),
            pick(mask.0[1], if_true.0[1], if_false.0[1]),
            pick(mask.0[2], if_true.0[2], if_false.0[2]),
            pick(mask.0[3], if_true.0[3], if_false.0[3]),
        ])
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 lanes. Every intrinsic below is an AVX instruction (the f64x4
    //! arithmetic set predates AVX2; detection gates on the stricter
    //! feature anyway). SAFETY argument for the whole module: values of
    //! [`Avx2F64x4`] only come into existence inside
    //! [`round_chunks_avx2`], which is compiled with
    //! `#[target_feature(enable = "avx2")]` and entered only through
    //! [`super::round_chunks`] after [`super::SimdBackend`] validation —
    //! i.e. after `is_x86_feature_detected!("avx2")` approved this CPU.

    use super::{LaneVec, RoundSpan};
    use core::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_andnot_pd, _mm256_blendv_pd, _mm256_cmp_pd,
        _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _CMP_GT_OQ,
    };

    #[derive(Clone, Copy)]
    pub(crate) struct Avx2F64x4(__m256d);

    impl LaneVec for Avx2F64x4 {
        #[inline(always)]
        fn splat(x: f64) -> Self {
            // SAFETY: AVX is available (module docs).
            Avx2F64x4(unsafe { _mm256_set1_pd(x) })
        }

        #[inline(always)]
        fn load(s: &[f64], at: usize) -> Self {
            let s = &s[at..at + 4];
            // SAFETY: the slice above bounds-checks the 32 bytes read;
            // unaligned load, so `Vec<f64>`'s 8-byte alignment suffices.
            Avx2F64x4(unsafe { _mm256_loadu_pd(s.as_ptr()) })
        }

        #[inline(always)]
        fn store(self, s: &mut [f64], at: usize) {
            let s = &mut s[at..at + 4];
            // SAFETY: the slice above bounds-checks the 32 bytes written.
            unsafe { _mm256_storeu_pd(s.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            // SAFETY: AVX is available (module docs).
            Avx2F64x4(unsafe { _mm256_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            // SAFETY: AVX is available (module docs).
            Avx2F64x4(unsafe { _mm256_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            // SAFETY: AVX is available (module docs).
            Avx2F64x4(unsafe { _mm256_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            // SAFETY: AVX is available (module docs).
            Avx2F64x4(unsafe { _mm256_div_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn abs(self) -> Self {
            // SAFETY: AVX is available (module docs). andnot with the
            // sign-bit mask clears the sign, exactly `f64::abs`.
            Avx2F64x4(unsafe { _mm256_andnot_pd(_mm256_set1_pd(-0.0), self.0) })
        }

        #[inline(always)]
        fn gt(self, o: Self) -> Self {
            // SAFETY: AVX is available (module docs). Ordered quiet
            // greater-than: false on NaN, like the scalar `>`.
            Avx2F64x4(unsafe { _mm256_cmp_pd::<_CMP_GT_OQ>(self.0, o.0) })
        }

        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: AVX is available (module docs).
            Avx2F64x4(unsafe { _mm256_and_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn select(mask: Self, if_true: Self, if_false: Self) -> Self {
            // SAFETY: AVX is available (module docs). blendv picks by the
            // mask's sign bit; our masks are all-ones/all-zero lanes.
            Avx2F64x4(unsafe { _mm256_blendv_pd(if_false.0, if_true.0, mask.0) })
        }
    }

    /// The generic round kernel instantiated on AVX2 lanes, compiled with
    /// the feature enabled so the `#[inline(always)]` chain folds into
    /// straight-line vector code.
    #[target_feature(enable = "avx2")]
    pub(super) fn round_chunks_avx2(span: RoundSpan<'_>) {
        super::round_chunks_impl::<Avx2F64x4>(span);
    }
}

/// Run the vector round kernel over a span of live columns on the given
/// backend. `Scalar` never reaches this function (the batch peels zero
/// vector columns for it); it falls back to the portable lanes here only
/// as a defensive default.
pub(crate) fn round_chunks(backend: SimdBackend, span: RoundSpan<'_>) {
    match backend {
        SimdBackend::Scalar | SimdBackend::Portable => round_chunks_impl::<F64x4>(span),
        SimdBackend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `Avx2` only enters an `AmvaBatch` through
                // `SimdBackend::validated()` (or `detect()`), i.e. after
                // `is_x86_feature_detected!("avx2")` confirmed the CPU
                // runs these instructions.
                unsafe { avx2::round_chunks_avx2(span) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                round_chunks_impl::<F64x4>(span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validated_never_returns_an_unsupported_backend() {
        // Whatever the machine, a validated Avx2 request is either Avx2
        // (detection approved) or the portable fallback — never a lie.
        let v = SimdBackend::Avx2.validated();
        assert!(v == SimdBackend::Avx2 || v == SimdBackend::Portable);
        if v == SimdBackend::Avx2 {
            assert_eq!(SimdBackend::detect().validated(), SimdBackend::detect());
        }
        assert_eq!(SimdBackend::Scalar.validated(), SimdBackend::Scalar);
        assert_eq!(SimdBackend::Portable.validated(), SimdBackend::Portable);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(SimdBackend::Scalar.name(), "scalar");
        assert_eq!(SimdBackend::Portable.name(), "portable-f64x4");
        assert_eq!(SimdBackend::Avx2.name(), "avx2-f64x4");
    }

    #[test]
    fn portable_masks_blend_like_the_scalar_branches() {
        let a = F64x4::load(&[1.0, 2.0, 3.0, 4.0], 0);
        let b = F64x4::load(&[4.0, 2.0, 1.0, f64::NAN], 0);
        // gt: ordered — NaN compares false, like the scalar `>`.
        let m = a.gt(b);
        let picked = F64x4::select(m, F64x4::splat(1.0), F64x4::splat(0.0));
        let mut out = [0.0; 4];
        picked.store(&mut out, 0);
        assert_eq!(out, [0.0, 0.0, 1.0, 0.0]);
        // and: mask intersection.
        let both = m.and(F64x4::splat(1.0).gt(F64x4::splat(0.0)));
        let mut o2 = [9.0; 4];
        F64x4::select(both, F64x4::splat(1.0), F64x4::splat(0.0)).store(&mut o2, 0);
        assert_eq!(o2, [0.0, 0.0, 1.0, 0.0]);
    }
}
