//! Property-based integration tests of the execution substrate: invariants
//! that must hold for *any* application profile and configuration.

use ecost::apps::synth::synth_app_named;
use ecost::apps::AppClass;
use ecost::mapreduce::executor::{run_colocated, run_standalone};
use ecost::mapreduce::{BlockSize, FrameworkSpec, JobSpec, TuningConfig};
use ecost::sim::{Frequency, NodeSpec};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_class() -> impl Strategy<Value = AppClass> {
    prop_oneof![
        Just(AppClass::C),
        Just(AppClass::H),
        Just(AppClass::I),
        Just(AppClass::M),
    ]
}

fn arb_config(max_mappers: u32) -> impl Strategy<Value = TuningConfig> {
    (0usize..4, 0usize..5, 1u32..=max_mappers).prop_map(|(f, b, m)| TuningConfig {
        freq: Frequency::from_index(f).expect("index < 4"),
        block: BlockSize::ALL[b],
        mappers: m,
    })
}

fn job_named(
    class: AppClass,
    seed: u64,
    input_mb: f64,
    cfg: TuningConfig,
    name: &'static str,
) -> JobSpec {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let profile = synth_app_named(&mut rng, class, name);
    JobSpec::from_profile(profile, input_mb, cfg)
}

fn job(class: AppClass, seed: u64, input_mb: f64, cfg: TuningConfig) -> JobSpec {
    job_named(class, seed, input_mb, cfg, "prop")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any standalone job finishes with positive, finite time/energy, and
    /// moves at least its input through the disk.
    #[test]
    fn standalone_metrics_are_sane(
        class in arb_class(),
        seed in 0u64..1000,
        cfg in arb_config(8),
        input_gb in 1u32..=10,
    ) {
        let input_mb = f64::from(input_gb) * 1024.0;
        let out = run_standalone(
            &NodeSpec::atom_c2758(),
            &FrameworkSpec::default(),
            job(class, seed, input_mb, cfg),
        ).expect("simulation");
        prop_assert!(out.metrics.exec_time_s.is_finite() && out.metrics.exec_time_s > 0.0);
        prop_assert!(out.metrics.energy_j.is_finite() && out.metrics.energy_j > 0.0);
        prop_assert!(out.usage.read_mb >= 0.99 * input_mb);
        prop_assert!(out.usage.busy_core_s <= out.usage.alloc_core_s * (1.0 + 1e-9));
    }

    /// A co-runner never speeds the victim up, and never slows it by more
    /// than the worst case (full serialisation of both jobs' work).
    #[test]
    fn interference_is_bounded(
        class_a in arb_class(),
        class_b in arb_class(),
        seed in 0u64..500,
        ma in 1u32..=4,
        mb in 1u32..=4,
    ) {
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let cfg_a = TuningConfig { freq: Frequency::F2_0, block: BlockSize::B256, mappers: ma };
        let cfg_b = TuningConfig { freq: Frequency::F2_0, block: BlockSize::B256, mappers: mb };
        let a = job_named(class_a, seed, 1024.0, cfg_a, "prop-a");
        let b = job_named(class_b, seed + 1, 1024.0, cfg_b, "prop-b");
        let solo_a = run_standalone(&spec, &fw, a.clone()).expect("sim").metrics.exec_time_s;
        let solo_b = run_standalone(&spec, &fw, b.clone()).expect("sim").metrics.exec_time_s;
        let (outs, makespan) = run_colocated(&spec, &fw, vec![a, b]).expect("sim");
        let t_a = outs
            .iter()
            .find(|o| o.spec.label.starts_with("prop-a"))
            .expect("job a")
            .metrics
            .exec_time_s;
        // No speedup from contention (tiny numerical slack allowed).
        prop_assert!(t_a >= solo_a * 0.999, "t_a {t_a} solo {solo_a}");
        // And co-location can't be worse than running everything serially
        // with a generous contention margin.
        prop_assert!(makespan <= 1.3 * (solo_a + solo_b), "makespan {makespan} vs serial {}", solo_a + solo_b);
    }

    /// Energy attribution: the sum over jobs matches the node meter.
    #[test]
    fn attribution_conserves_energy(
        class_a in arb_class(),
        class_b in arb_class(),
        seed in 0u64..500,
    ) {
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let cfg = TuningConfig { freq: Frequency::F2_4, block: BlockSize::B512, mappers: 3 };
        let mut node = ecost::mapreduce::NodeSim::new(spec, fw);
        node.submit(job(class_a, seed, 2048.0, cfg)).expect("fits");
        node.submit(job(class_b, seed + 7, 1024.0, cfg)).expect("fits");
        node.run_to_completion().expect("sim");
        let attributed: f64 = node.finished().iter().map(|o| o.usage.energy_j).sum();
        let metered = node.energy_j();
        prop_assert!((attributed - metered).abs() <= 0.03 * metered,
            "attributed {attributed} metered {metered}");
    }

    /// Higher frequency never hurts completion time.
    #[test]
    fn frequency_monotonicity(
        class in arb_class(),
        seed in 0u64..500,
        m in 1u32..=8,
    ) {
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let t_of = |freq| {
            let cfg = TuningConfig { freq, block: BlockSize::B256, mappers: m };
            run_standalone(&spec, &fw, job(class, seed, 1024.0, cfg)).expect("sim").metrics.exec_time_s
        };
        let t_low = t_of(Frequency::F1_2);
        let t_high = t_of(Frequency::F2_4);
        prop_assert!(t_high <= t_low * 1.001, "t_high {t_high} t_low {t_low}");
    }

    /// More input never takes less time or energy.
    #[test]
    fn input_monotonicity(
        class in arb_class(),
        seed in 0u64..500,
    ) {
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let cfg = TuningConfig { freq: Frequency::F2_0, block: BlockSize::B256, mappers: 4 };
        let small = run_standalone(&spec, &fw, job(class, seed, 1024.0, cfg)).expect("sim").metrics;
        let large = run_standalone(&spec, &fw, job(class, seed, 5.0 * 1024.0, cfg)).expect("sim").metrics;
        prop_assert!(large.exec_time_s > small.exec_time_s);
        prop_assert!(large.energy_j > small.energy_j);
    }
}
