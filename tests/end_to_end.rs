//! Cross-crate integration: the full ECoST pipeline wired end-to-end on a
//! reduced budget (small inputs, subsampled sweeps) so it runs in test time.

use ecost::apps::{App, AppClass, InputSize};
use ecost::core::classify::{KnnAppClassifier, RuleClassifier};
use ecost::core::engine::EvalEngine;
use ecost::core::features::profile_catalog_app;
use ecost::core::pairing::PairingPolicy;
use ecost::core::queue::WaitQueue;
use ecost::core::stp::{encode_columns, encode_row, MlmStp, Stp};
use ecost::mapreduce::PairConfig;
use ecost::ml::{Dataset, RepTree, RepTreeConfig};

fn training_signatures(eng: &EvalEngine) -> Vec<(ecost::core::features::AppSignature, AppClass)> {
    // All sizes, as the real offline phase does — a k=3 vote needs more than
    // one exemplar per class.
    ecost::apps::TRAINING_APPS
        .iter()
        .flat_map(|&a| InputSize::ALL.iter().map(move |&s| (a, s)))
        .map(|(a, s)| {
            let sig = profile_catalog_app(eng, a, s, 0.02, 3).expect("profiling run");
            (sig, a.class())
        })
        .collect()
}

#[test]
fn classify_pair_tune_run_pipeline() {
    let eng = EvalEngine::atom();
    let idle = eng.idle_w();

    // 1. Classify two unknown arrivals.
    let classifier = RuleClassifier::fit(&training_signatures(&eng));
    let sig_svm = profile_catalog_app(&eng, App::Svm, InputSize::Small, 0.02, 9).expect("profile");
    let sig_pr = profile_catalog_app(&eng, App::Pr, InputSize::Small, 0.02, 9).expect("profile");
    let class_svm = classifier.classify(&sig_svm.features);
    let class_pr = classifier.classify(&sig_pr.features);
    assert_eq!(class_svm, AppClass::C);

    // 2. Queue + pairing decision tree.
    let mut queue = WaitQueue::new(2);
    queue.push("svm", class_svm, 100.0);
    queue.push("pr", class_pr, 100.0);
    let policy = PairingPolicy::default();
    let eligible = queue.eligible();
    let classes: Vec<AppClass> = eligible.iter().map(|(_, c)| *c).collect();
    let pick = policy.choose(&classes).expect("two candidates");
    // PR (H-ish) outranks SVM (C) under I > H > C > M.
    assert_eq!(
        queue
            .peek(eligible[pick].0)
            .expect("eligible index in range")
            .payload,
        "pr"
    );

    // 3. Self-tune with a REPTree trained on one swept training pair.
    let mb = InputSize::Small.per_node_mb();
    let sweep = eng
        .pair_sweep(App::Wc.profile(), mb, App::St.profile(), mb)
        .expect("pair sweep");
    let sig_wc = profile_catalog_app(&eng, App::Wc, InputSize::Small, 0.02, 3).expect("profile");
    let sig_st = profile_catalog_app(&eng, App::St, InputSize::Small, 0.02, 3).expect("profile");
    let mut ds = Dataset::new(encode_columns(), "ln_edp");
    for run in sweep.runs().iter() {
        // Reorient so `.a` lines up with wc's signature.
        let cfg = if sweep.swapped() {
            run.config.swapped()
        } else {
            run.config
        };
        ds.push(
            encode_row(&sig_wc.key(), cfg.a, &sig_st.key(), cfg.b),
            run.metrics.edp_wall(idle).ln(),
        );
    }
    let mut models = std::collections::HashMap::new();
    let mut tree = RepTree::new(RepTreeConfig {
        max_depth: 32,
        min_samples_split: 4,
        min_samples_leaf: 1,
        prune_fraction: 0.1,
        ..RepTreeConfig::default()
    });
    ecost::ml::model::Regressor::fit(&mut tree, &ds);
    models.insert(
        ecost::apps::class::ClassPair::new(AppClass::C, AppClass::I),
        tree,
    );
    let stp = MlmStp::new(
        models,
        KnnAppClassifier::fit(&training_signatures(&eng)),
        "REPTree",
    );
    let cores = eng.testbed().node.cores;
    let cfg = stp.choose(&sig_wc, &sig_st, cores).expect("stp choice");
    assert!(cfg.cores() <= cores);

    // 4. The predicted config must be competitive with the oracle on the
    //    pair it was trained on (in-distribution sanity).
    let chosen = eng
        .pair_metrics(App::Wc.profile(), mb, App::St.profile(), mb, cfg)
        .expect("pair sim");
    let best = eng
        .best_pair(App::Wc.profile(), mb, App::St.profile(), mb)
        .expect("pair sweep");
    let gap = chosen.edp_wall(idle) / best.metrics.edp_wall(idle);
    assert!(gap < 1.3, "STP config {:.2}x off the oracle", gap);
}

#[test]
fn oracle_config_beats_default_everywhere() {
    let eng = EvalEngine::atom();
    let idle = eng.idle_w();
    let mb = InputSize::Small.per_node_mb();
    for (a, b) in [(App::St, App::St), (App::Wc, App::Fp)] {
        let best = eng
            .best_pair(a.profile(), mb, b.profile(), mb)
            .expect("pair sweep");
        let default = PairConfig {
            a: ecost::mapreduce::TuningConfig {
                mappers: 4,
                ..ecost::mapreduce::TuningConfig::hadoop_default(8)
            },
            b: ecost::mapreduce::TuningConfig {
                mappers: 4,
                ..ecost::mapreduce::TuningConfig::hadoop_default(8)
            },
        };
        let def = eng
            .pair_metrics(a.profile(), mb, b.profile(), mb, default)
            .expect("pair sim");
        assert!(
            best.metrics.edp_wall(idle) <= def.edp_wall(idle) + 1e-9,
            "{a}-{b}"
        );
    }
}

#[test]
fn signatures_feed_knn_classifier_correctly() {
    let eng = EvalEngine::atom();
    let knn = KnnAppClassifier::fit(&training_signatures(&eng));
    // Test apps at the training size.
    let mut hits = 0;
    for app in [App::Svm, App::Hmm, App::Km, App::Cf] {
        let sig = profile_catalog_app(&eng, app, InputSize::Small, 0.02, 5).expect("profile");
        if knn.classify(&sig.features) == app.class() {
            hits += 1;
        }
    }
    assert!(hits >= 3, "{hits}/4");
}
