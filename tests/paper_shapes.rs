//! Shape regression tests: coarse assertions of the paper's headline
//! results, so a calibration regression fails CI rather than silently
//! deforming every figure. Thresholds are deliberately loose — they encode
//! *who wins*, not exact factors.

use ecost::apps::{App, InputSize};
use ecost::core::engine::EvalEngine;
use ecost::core::strategies;
use ecost::mapreduce::{BlockSize, TuningConfig};
use ecost::sim::Frequency;

#[test]
fn fig3_shape_ii_wins_mm_flat() {
    let eng = EvalEngine::atom();
    let mb = InputSize::Small.per_node_mb();
    let gain = |a: App, b: App| {
        strategies::colao_over_ilao_gain(&eng, a.profile(), b.profile(), mb).expect("gain")
    };
    let ii = gain(App::St, App::St);
    let mm = gain(App::Fp, App::Fp);
    let ci = gain(App::Wc, App::St);
    assert!(ii > 2.0, "I-I gain {ii}");
    assert!(
        ii > ci && ci > mm,
        "ordering I-I {ii} > C-I {ci} > M-M {mm}"
    );
    assert!(mm > 0.8 && mm < 1.8, "M-M ≈ flat, got {mm}");
}

#[test]
fn fig2_shape_sensitivity_declines_with_mappers() {
    let eng = EvalEngine::atom();
    let idle = eng.idle_w();
    let gain_at = |m: u32| {
        let edp = |f: Frequency, h: BlockSize| {
            eng.solo_metrics(
                App::Wc.profile(),
                InputSize::Small.per_node_mb(),
                TuningConfig {
                    freq: f,
                    block: h,
                    mappers: m,
                },
            )
            .expect("solo sim")
            .edp_wall(idle)
        };
        let base = edp(Frequency::F1_2, BlockSize::B64);
        let best = Frequency::ALL
            .iter()
            .flat_map(|f| BlockSize::ALL.iter().map(move |h| (*f, *h)))
            .map(|(f, h)| edp(f, h))
            .fold(f64::INFINITY, f64::min);
        1.0 - best / base
    };
    let g1 = gain_at(1);
    let g8 = gain_at(8);
    assert!(g1 > 0.4, "tuning must matter at m=1: {g1}");
    assert!(
        g1 > g8,
        "sensitivity shrinks with mappers: m1 {g1} vs m8 {g8}"
    );
}

#[test]
fn table2_shape_optimal_configs_prefer_high_freq_large_blocks() {
    // Table 2's oracle configs are almost all 2.4 GHz with 512/1024 MB
    // blocks; verify the same tendency.
    let eng = EvalEngine::atom();
    let mb = InputSize::Small.per_node_mb();
    let mut high_freq = 0;
    let mut large_block = 0;
    let mut total = 0;
    for app in [App::Wc, App::Gp, App::Fp] {
        let best = eng.best_solo(app.profile(), mb).expect("solo sweep");
        total += 1;
        if best.config.freq >= Frequency::F2_0 {
            high_freq += 1;
        }
        if best.config.block >= BlockSize::B512 {
            large_block += 1;
        }
    }
    assert!(
        high_freq >= total - 1,
        "{high_freq}/{total} high-frequency optima"
    );
    assert!(
        large_block >= total - 1,
        "{large_block}/{total} large-block optima"
    );
}

#[test]
fn io_apps_get_few_mappers_compute_apps_many() {
    // The §4.1/§5 driver: at the optimum, Sort wants few slots, WordCount
    // wants most of the node.
    let eng = EvalEngine::atom();
    let mb = InputSize::Medium.per_node_mb();
    let st = eng.best_solo(App::St.profile(), mb).expect("solo sweep");
    let wc = eng.best_solo(App::Wc.profile(), mb).expect("solo sweep");
    assert!(st.config.mappers <= 5, "st mappers {}", st.config.mappers);
    assert!(wc.config.mappers >= 6, "wc mappers {}", wc.config.mappers);
}

#[test]
fn colocation_beyond_two_degrades() {
    // §4.2: "co-locating beyond 2 applications … degrades energy
    // efficiency". Eight 5 GB FP-Growth jobs through one node: four batches
    // of two co-located jobs (working sets fit in DRAM) vs. all eight at
    // once (8 × ~3 GB resident blows past 8 GB → spill pressure).
    let eng = EvalEngine::atom();
    let tb = eng.testbed();
    let idle = eng.idle_w();
    let run_batches = |per_batch: usize| {
        let m = (8 / per_batch as u32).max(1);
        let cfg = TuningConfig {
            freq: Frequency::F2_0,
            block: BlockSize::B512,
            mappers: m,
        };
        let mut makespan = 0.0;
        let mut energy = 0.0;
        for _batch in 0..(8 / per_batch) {
            let jobs: Vec<_> = (0..per_batch)
                .map(|_| {
                    ecost::mapreduce::JobSpec::from_profile(
                        App::Fp.profile().clone(),
                        5.0 * 1024.0,
                        cfg,
                    )
                })
                .collect();
            let (outs, span) =
                ecost::mapreduce::executor::run_colocated(&tb.node, &tb.fw, jobs).expect("sim");
            makespan += span;
            energy += outs.iter().map(|o| o.metrics.energy_j).sum::<f64>();
        }
        ecost::mapreduce::PairMetrics {
            makespan_s: makespan,
            energy_j: energy,
        }
        .edp_wall(idle)
    };
    let e2 = run_batches(2);
    let e8 = run_batches(8);
    assert!(e8 > 1.1 * e2, "8-way {e8} must degrade vs 2-at-a-time {e2}");
}
