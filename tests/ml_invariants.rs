//! Property-based tests of the ML substrate, driven through the facade.

use ecost::ml::model::Regressor;
use ecost::ml::{hcluster, Dataset, LinearRegression, Pca, RepTree, RepTreeConfig, ZScore};
use proptest::prelude::*;

fn arb_rows(cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, cols..=cols), 8..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PCA: variance ratios are a distribution, eigenvalues descend, and
    /// components are orthonormal — for arbitrary data.
    #[test]
    fn pca_invariants(rows in arb_rows(5)) {
        let z = ZScore::fit(&rows);
        let pca = Pca::fit(&z.transform_all(&rows)).expect("PCA");
        let ratios = pca.explained_variance_ratio();
        let sum: f64 = ratios.iter().sum();
        prop_assert!(ratios.iter().all(|r| (-1e-9..=1.0 + 1e-9).contains(r)));
        prop_assert!((sum - 1.0).abs() < 1e-6 || sum.abs() < 1e-9);
        for w in pca.explained_variance.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        for i in 0..5 {
            let norm: f64 = pca.components.row(i).iter().map(|v| v * v).sum();
            prop_assert!((norm - 1.0).abs() < 1e-6);
        }
    }

    /// Z-score round-trips for arbitrary rows.
    #[test]
    fn zscore_round_trip(rows in arb_rows(4)) {
        let z = ZScore::fit(&rows);
        for r in &rows {
            let back = z.inverse(&z.transform(r));
            for (a, b) in back.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Tree predictions stay within the training-target range, and the tree
    /// interpolates constants exactly.
    #[test]
    fn tree_prediction_bounds(
        xs in prop::collection::vec(-50.0f64..50.0, 12..60),
        noise_seed in 0u64..100,
    ) {
        let mut d = Dataset::new(vec!["x".into()], "y");
        for (i, x) in xs.iter().enumerate() {
            let y = x.sin() * 10.0 + ((i as u64 + noise_seed) % 3) as f64;
            d.push(vec![*x], y);
        }
        let lo = d.y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut tree = RepTree::new(RepTreeConfig::default());
        tree.fit(&d);
        for probe in [-100.0, -7.3, 0.0, 19.2, 100.0] {
            let p = tree.predict(&[probe]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo},{hi}]");
        }
    }

    /// OLS residuals are orthogonal to the fitted values' improvement: the
    /// fit can't be beaten by scaling the weights.
    #[test]
    fn ols_is_least_squares(rows in arb_rows(3)) {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()], "y");
        for r in &rows {
            let y = 2.0 * r[0] - r[1] + 0.5 * r[2] + 3.0;
            d.push(r.clone(), y);
        }
        let mut lr = LinearRegression::new();
        lr.fit(&d);
        let pred = lr.predict_all(&d.x);
        let sse: f64 = pred.iter().zip(&d.y).map(|(p, y)| (p - y) * (p - y)).sum();
        // The relation is exactly linear → near-zero residual.
        prop_assert!(sse < 1e-6 * d.len() as f64, "sse {sse}");
    }

    /// Hierarchical clustering: cutting at k yields exactly k clusters that
    /// partition the points.
    #[test]
    fn clustering_partitions(points in arb_rows(2), k in 1usize..5) {
        let k = k.min(points.len());
        let dend = hcluster::agglomerative(&points, hcluster::Linkage::Average);
        let labels = dend.cut(k);
        prop_assert_eq!(labels.len(), points.len());
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        prop_assert_eq!(distinct.len(), k);
        prop_assert!(labels.iter().all(|l| *l < k));
    }
}
